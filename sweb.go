// Package sweb is a full reproduction of "SWEB: Towards a Scalable World
// Wide Web Server on Multicomputers" (Andresen, Yang, Holmedahl, Ibarra —
// IPPS 1996): a distributed WWW server whose nodes cooperate through a
// multi-faceted scheduler that weighs CPU, disk, and interconnect load to
// serve or redirect each request for minimum estimated completion time.
//
// The package offers three layers:
//
//   - The scheduling core (Scheduler, Params, Request, NodeLoad): the
//     paper's cost model t_s = t_redirection + t_data + t_CPU + t_net and
//     the baseline policies it is evaluated against.
//
//   - A simulated multicomputer (SimConfig, NewSimCluster, MeikoSim,
//     NOWSim): a deterministic discrete-event model of the Meiko CS-2 and
//     the SparcStation NOW used to regenerate every table and figure in the
//     paper's evaluation (see the Table1..Overhead functions).
//
//   - A live cluster (LiveOptions, StartLive): real HTTP/1.0 servers over
//     TCP with UDP loadd gossip and 302 redirection, run in-process.
//
// Quickstart:
//
//	st := sweb.NewStore(4)
//	paths := sweb.UniformSet(st, 16, 64<<10)
//	cl, _ := sweb.StartLive(sweb.LiveOptions{Nodes: 4, Store: st, BaseDir: dir})
//	defer cl.Close()
//	res, _ := cl.NewClient().Get(paths[0])
package sweb

import (
	"sweb/internal/accesslog"
	"sweb/internal/analytic"
	"sweb/internal/core"
	"sweb/internal/experiments"
	"sweb/internal/heat"
	"sweb/internal/live"
	"sweb/internal/simsrv"
	"sweb/internal/stats"
	"sweb/internal/storage"
	"sweb/internal/trace"
	"sweb/internal/workload"
)

// --- Scheduling core -----------------------------------------------------

// Scheduler is the paper's multi-faceted scheduler.
type Scheduler = core.SWEB

// Params are the scheduler tunables (Δ bump, redirect costs, facet
// toggles).
type Params = core.Params

// Request is the broker's view of a preprocessed HTTP request.
type Request = core.Request

// NodeLoad is one row of the broker's load table.
type NodeLoad = core.NodeLoad

// Decision is a scheduling outcome.
type Decision = core.Decision

// Policy is any placement policy (SWEB, round robin, file locality, ...).
type Policy = core.Policy

// Baseline policies from the paper's comparison (Sec. 4.2).
type (
	// RoundRobin serves every request where DNS delivered it.
	RoundRobin = core.RoundRobin
	// FileLocality always serves at the owning node.
	FileLocality = core.FileLocality
	// CPUOnly is the single-faceted load balancer.
	CPUOnly = core.CPUOnly
)

// NewScheduler builds the SWEB policy with the given parameters.
func NewScheduler(p Params) *Scheduler { return core.NewSWEB(p) }

// DefaultParams returns the paper's calibration (Δ=30%, one redirect max,
// 4 ms redirect cost, all facets on).
func DefaultParams() Params { return core.DefaultParams() }

// --- Documents -----------------------------------------------------------

// Store is the cluster-wide document-ownership map.
type Store = storage.Store

// File describes one served document.
type File = storage.File

// NewStore creates an empty layout for n nodes.
func NewStore(n int) *Store { return storage.NewStore(n) }

// Corpus generators used throughout the evaluation.
var (
	// UniformSet: count equal-size files placed round-robin.
	UniformSet = storage.UniformSet
	// NonUniformSet: sizes uniform in [min,max], placed round-robin.
	NonUniformSet = storage.NonUniformSet
	// CollectionSet: one size-banded collection per node's disk.
	CollectionSet = storage.CollectionSet
	// SkewedSet: a single hot file on node 0.
	SkewedSet = storage.SkewedSet
	// ADLSet: an Alexandria-Digital-Library-style corpus.
	ADLSet = storage.ADLSet
	// AddCGISet: dynamic endpoints with a fixed compute demand.
	AddCGISet = storage.AddCGISet
)

// --- Simulated multicomputer ----------------------------------------------

// SimConfig configures a simulated cluster.
type SimConfig = simsrv.Config

// SimCluster is a simulated SWEB deployment.
type SimCluster = simsrv.Cluster

// RunResult aggregates one experiment run.
type RunResult = stats.RunResult

// Simulated policy and interconnect names.
const (
	PolicySWEB         = simsrv.PolicySWEB
	PolicyRoundRobin   = simsrv.PolicyRoundRobin
	PolicyFileLocality = simsrv.PolicyFileLocality
	PolicyCPUOnly      = simsrv.PolicyCPUOnly

	NetMeiko = simsrv.NetMeiko
	NetNOW   = simsrv.NetNOW
)

// NewSimCluster builds a simulated cluster.
func NewSimCluster(cfg SimConfig) (*SimCluster, error) { return simsrv.New(cfg) }

// MeikoSim returns the calibrated Meiko CS-2 configuration for n nodes.
func MeikoSim(n int, st *Store) SimConfig { return simsrv.MeikoConfig(n, st) }

// NOWSim returns the calibrated SparcStation-NOW configuration.
func NOWSim(n int, st *Store) SimConfig { return simsrv.NOWConfig(n, st) }

// --- Workloads -------------------------------------------------------------

// Burst is the paper's test shape: RPS requests launched each second.
type Burst = workload.Burst

// Arrival is one scheduled request.
type Arrival = workload.Arrival

// Picker chooses request paths.
type Picker = workload.Picker

// Path pickers.
var (
	UniformPicker    = workload.UniformPicker
	RoundRobinPicker = workload.RoundRobinPicker
	ZipfPicker       = workload.ZipfPicker
	SinglePicker     = workload.SinglePicker
	WeightedPicker   = workload.WeightedPicker
)

// --- Live cluster ----------------------------------------------------------

// LiveOptions configures a live (real TCP/UDP) cluster.
type LiveOptions = live.Options

// LiveCluster is a running live deployment.
type LiveCluster = live.Cluster

// LiveResult is one live fetch outcome.
type LiveResult = live.Result

// StartLive materializes docroots and starts n real httpd nodes.
func StartLive(o LiveOptions) (*LiveCluster, error) { return live.Start(o) }

// --- Document heat -----------------------------------------------------------

// HeatDump is one node's document-heat sketch contents (see /sweb/heat).
type HeatDump = heat.Dump

// MergedHeat is the cluster-wide per-document view summed across nodes.
type MergedHeat = heat.Merged

// PlacementAdvice is one report-only replication recommendation.
type PlacementAdvice = heat.Advice

var (
	// MergeHeat sums per-node heat dumps into the cluster view.
	MergeHeat = heat.Merge
	// AdviseHeat ranks hot documents and prices an extra replica.
	AdviseHeat = heat.Advise
	// RenderHeat / RenderHeatAdvice are swebtop's heat panels.
	RenderHeat       = heat.Render
	RenderHeatAdvice = heat.RenderAdvice
)

// --- Analysis & experiments -------------------------------------------------

// AnalyticModel is the Section 3.3 closed-form throughput bound.
type AnalyticModel = analytic.Model

// ExperimentOptions scale the table regenerators.
type ExperimentOptions = experiments.Options

// Table regenerators: each returns structured rows plus a rendered
// paper-style table.
var (
	Table1           = experiments.Table1
	Table2           = experiments.Table2
	Table3           = experiments.Table3
	Table4           = experiments.Table4
	Table5           = experiments.Table5
	SkewedTest       = experiments.Skewed
	Overhead         = experiments.Overhead
	AnalyticTable    = experiments.Analytic
	AblationDelta    = experiments.AblationDelta
	AblationDNSCache = experiments.AblationDNSCache
	AblationFacets   = experiments.AblationFacets
	AblationPingPong = experiments.AblationPingPong
	Heterogeneous    = experiments.Heterogeneous
	Forwarding       = experiments.Forwarding
	Centralized      = experiments.Centralized
	CentralSPOF      = experiments.CentralSPOF
	GossipLoss       = experiments.GossipLoss
	ScalabilityCurve = experiments.ScalabilityCurve
	Throughput       = experiments.Throughput
	CoopCache        = experiments.CoopCache
	EastCoast        = experiments.EastCoast
)

// --- Tracing & access logs ---------------------------------------------------

// TraceRecorder captures per-request lifecycle events (Figure 1).
type TraceRecorder = trace.Recorder

// NewTraceRecorder builds a recorder capturing up to limit events
// (<=0 for the default cap).
func NewTraceRecorder(limit int) *TraceRecorder { return trace.NewRecorder(limit) }

// TraceCollector stitches per-node event streams into end-to-end spans.
type TraceCollector = trace.Collector

// NewTraceCollector returns an empty collector; feed it each node's
// /sweb/trace dump (events + epoch) and read back cross-node spans.
func NewTraceCollector() *TraceCollector { return trace.NewCollector() }

// TraceSpan is one stitched end-to-end request.
type TraceSpan = trace.Span

// ExportChromeTrace writes spans as a Perfetto-loadable Chrome trace
// (chrome://tracing / ui.perfetto.dev): one track per node, flow arrows
// for cross-node hops.
var ExportChromeTrace = trace.ExportChrome

// AccessLogEntry is one NCSA Common Log Format record.
type AccessLogEntry = accesslog.Entry

// AccessLogger writes CLF lines; attach one to live nodes via
// httpd.Config.AccessLog.
type AccessLogger = accesslog.Logger

// NewAccessLogger wraps w with a concurrent CLF writer.
var NewAccessLogger = accesslog.NewLogger

// ParseAccessLog reads a whole CLF log.
var ParseAccessLog = accesslog.Parse

// FromAccessLog replays a parsed access log as a simulator workload.
var FromAccessLog = workload.FromAccessLog
