GO ?= go

# Packages with concurrent live-cluster paths; kept race-clean.
RACE_PKGS = ./internal/httpd/... ./internal/loadd/... ./internal/live/... ./internal/retry/...

.PHONY: build test vet race check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

# The CI gate: tier-1 build+test plus vet and the race pass over the
# concurrent packages.
check: build vet test race
