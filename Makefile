GO ?= go

# Packages with concurrent live-cluster paths; kept race-clean.
RACE_PKGS = ./internal/httpd/... ./internal/loadd/... ./internal/live/... ./internal/retry/... ./internal/metrics/...

.PHONY: build test vet race fmt-check check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

# gofmt prints nothing when everything is formatted; any output fails.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The CI gate: tier-1 build+test plus vet, formatting, and the race pass
# over the concurrent packages.
check: build vet fmt-check test race

# Regenerate the paper's evaluation on the simulated substrate and archive
# the headline metrics machine-readably.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem . | $(GO) run ./cmd/benchjson > BENCH_sim.json
	@echo "wrote BENCH_sim.json"
