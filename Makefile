GO ?= go

# Packages with concurrent live-cluster paths; kept race-clean.
RACE_PKGS = ./internal/httpd/... ./internal/httpmsg/... ./internal/loadd/... ./internal/live/... ./internal/retry/... ./internal/metrics/... ./internal/monitor/... ./internal/cache/... ./internal/flight/... ./internal/slo/... ./internal/heat/... ./internal/rebalance/...

.PHONY: build test vet race fmt-check check bench bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

# gofmt prints nothing when everything is formatted; any output fails.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The CI gate: tier-1 build+test plus vet, formatting, and the race pass
# over the concurrent packages.
check: build vet fmt-check test race

# Regenerate the paper's evaluation on the simulated substrate and archive
# the headline metrics machine-readably. -benchtime=1x pins one DES run per
# benchmark, so the seeded headline metrics are reproducible and comparable.
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -benchmem . | $(GO) run ./cmd/benchjson > BENCH_sim.json
	@echo "wrote BENCH_sim.json"

# Diff a fresh run against the committed baseline; fails on any headline
# metric regressing more than 20%.
bench-compare:
	$(GO) test -run '^$$' -bench=. -benchtime=1x . | $(GO) run ./cmd/benchjson -compare BENCH_sim.json
