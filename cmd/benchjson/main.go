// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark runs can be
// archived and diffed across commits:
//
//	go test -run '^$' -bench=. -benchmem . | go run ./cmd/benchjson > BENCH_sim.json
//
// Standard ns/op, B/op, and allocs/op columns land in dedicated fields;
// anything else (the b.ReportMetric headline numbers like
// "meiko-sustained-1.5M-rps") is collected in the per-benchmark metrics
// map. Non-benchmark lines (PASS, ok, goos/goarch headers) pass through
// untouched to stderr so the terminal still shows the run's verdict.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output from r, echoing non-benchmark lines
// to passthrough (nil discards them).
func parse(r io.Reader, passthrough io.Writer) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		b, ok := parseLine(line)
		if !ok {
			if passthrough != nil {
				fmt.Fprintln(passthrough, line)
			}
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one result line:
//
//	BenchmarkTable1-8   3   123456 ns/op   512 B/op   7 allocs/op   96.5 some-rps
//
// i.e. a Benchmark* name, an iteration count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: trimProcSuffix(fields[0]), Iterations: iters}
	pairs := fields[2:]
	if len(pairs)%2 != 0 {
		return Benchmark{}, false
	}
	for i := 0; i < len(pairs); i += 2 {
		v, err := strconv.ParseFloat(pairs[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := pairs[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// trimProcSuffix drops the -GOMAXPROCS tail ("BenchmarkTable1-8" →
// "BenchmarkTable1") so results compare across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
