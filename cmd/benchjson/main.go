// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark runs can be
// archived and diffed across commits:
//
//	go test -run '^$' -bench=. -benchmem . | go run ./cmd/benchjson > BENCH_sim.json
//
// Standard ns/op, B/op, and allocs/op columns land in dedicated fields;
// anything else (the b.ReportMetric headline numbers like
// "meiko-sustained-1.5M-rps") is collected in the per-benchmark metrics
// map. Non-benchmark lines (PASS, ok, goos/goarch headers) pass through
// untouched to stderr so the terminal still shows the run's verdict.
//
// With -compare, the fresh run is diffed against an archived baseline and
// the command fails when a headline metric regresses past -threshold:
//
//	go test -run '^$' -bench=. -benchtime=1x . | \
//	    go run ./cmd/benchjson -compare BENCH_sim.json
//
// Only the deterministic b.ReportMetric headline numbers gate by default;
// wall-clock ns/op varies with the machine and only participates under
// -timing. Direction is inferred from the unit name: throughput ("-rps",
// "speedup") must not fall, latency/drop figures ("-s", "-ms", "-pct")
// must not climb.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.String("compare", "", "baseline Report JSON to diff the fresh run against; regressions past -threshold fail")
	threshold := flag.Float64("threshold", 0.2, "relative regression tolerance for -compare (0.2 = 20%)")
	timing := flag.Bool("timing", false, "also gate machine-dependent ns/op in -compare mode")
	flag.Parse()

	rep, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *compare != "" {
		base, err := readReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		ok := diffReports(os.Stdout, base, rep, *threshold, *timing)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: regression beyond %.0f%% against %s\n", *threshold*100, *compare)
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// higherIsBetter infers a metric's good direction from its unit name.
// Unknown units return ok=false and are reported but never gate.
func higherIsBetter(unit string) (better, ok bool) {
	switch {
	case strings.HasSuffix(unit, "-rps"), strings.Contains(unit, "speedup"):
		return true, true
	case strings.HasSuffix(unit, "-s"), strings.HasSuffix(unit, "-ms"),
		strings.HasSuffix(unit, "-pct"), unit == "ns/op":
		return false, true
	}
	return false, false
}

// diffReports prints a comparison table and reports whether the fresh run
// stays within threshold of the baseline on every gated metric. A metric
// present in the baseline but missing from the fresh run also fails: a
// silently vanished benchmark must not read as a pass.
func diffReports(w io.Writer, base, fresh *Report, threshold float64, timing bool) bool {
	freshBy := make(map[string]Benchmark, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshBy[b.Name] = b
	}
	pass := true
	fmt.Fprintf(w, "%-55s %12s %12s %8s  %s\n", "metric", "base", "new", "change", "verdict")
	for _, bb := range base.Benchmarks {
		fb, found := freshBy[bb.Name]
		if !found {
			fmt.Fprintf(w, "%-55s %12s %12s %8s  FAIL (benchmark missing)\n", bb.Name, "-", "-", "-")
			pass = false
			continue
		}
		units := make([]string, 0, len(bb.Metrics)+1)
		for u := range bb.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		if timing && bb.NsPerOp > 0 {
			units = append(units, "ns/op")
		}
		for _, unit := range units {
			name := bb.Name + " " + unit
			var bv, fv float64
			var present bool
			if unit == "ns/op" {
				bv, fv, present = bb.NsPerOp, fb.NsPerOp, fb.NsPerOp > 0
			} else {
				bv = bb.Metrics[unit]
				fv, present = fb.Metrics[unit]
			}
			if !present {
				fmt.Fprintf(w, "%-55s %12.4g %12s %8s  FAIL (metric missing)\n", name, bv, "-", "-")
				pass = false
				continue
			}
			better, known := higherIsBetter(unit)
			change, regressed := regression(bv, fv, better, threshold)
			verdict := "ok"
			switch {
			case !known:
				verdict = "skip (unknown unit)"
			case regressed:
				verdict = "FAIL"
				pass = false
			}
			fmt.Fprintf(w, "%-55s %12.4g %12.4g %+7.1f%%  %s\n", name, bv, fv, change*100, verdict)
		}
	}
	return pass
}

// regression returns the relative change and whether it exceeds threshold
// in the bad direction. A zero baseline only regresses when a lower-better
// metric becomes positive.
func regression(base, fresh float64, higherBetter bool, threshold float64) (change float64, regressed bool) {
	if base == 0 {
		if fresh == 0 {
			return 0, false
		}
		return math.Inf(1), !higherBetter
	}
	change = (fresh - base) / math.Abs(base)
	if higherBetter {
		return change, change < -threshold
	}
	return change, change > threshold
}

// parse reads `go test -bench` output from r, echoing non-benchmark lines
// to passthrough (nil discards them).
func parse(r io.Reader, passthrough io.Writer) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		b, ok := parseLine(line)
		if !ok {
			if passthrough != nil {
				fmt.Fprintln(passthrough, line)
			}
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one result line:
//
//	BenchmarkTable1-8   3   123456 ns/op   512 B/op   7 allocs/op   96.5 some-rps
//
// i.e. a Benchmark* name, an iteration count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: trimProcSuffix(fields[0]), Iterations: iters}
	pairs := fields[2:]
	if len(pairs)%2 != 0 {
		return Benchmark{}, false
	}
	for i := 0; i < len(pairs); i += 2 {
		v, err := strconv.ParseFloat(pairs[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := pairs[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// trimProcSuffix drops the -GOMAXPROCS tail ("BenchmarkTable1-8" →
// "BenchmarkTable1") so results compare across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
