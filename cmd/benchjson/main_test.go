package main

import (
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: sweb
BenchmarkTable1-8   	       2	 512345678 ns/op	     120 meiko-sustained-1.5M-rps	    40960 B/op	     311 allocs/op
BenchmarkOverhead-8 	    1000	      1042 ns/op
PASS
ok  	sweb	3.210s
`

func TestParseRun(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleRun), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkTable1" || b.Iterations != 2 {
		t.Fatalf("first = %+v", b)
	}
	if b.NsPerOp != 512345678 || b.BytesPerOp != 40960 || b.AllocsPerOp != 311 {
		t.Fatalf("std metrics = %+v", b)
	}
	if b.Metrics["meiko-sustained-1.5M-rps"] != 120 {
		t.Fatalf("custom metrics = %+v", b.Metrics)
	}
	if rep.Benchmarks[1].Name != "BenchmarkOverhead" || rep.Benchmarks[1].NsPerOp != 1042 {
		t.Fatalf("second = %+v", rep.Benchmarks[1])
	}
}

func TestParsePassesThroughNonBenchLines(t *testing.T) {
	var out strings.Builder
	if _, err := parse(strings.NewReader(sampleRun), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"goos: linux", "PASS", "ok  \tsweb"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("passthrough missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "BenchmarkTable1") {
		t.Fatal("benchmark line leaked into passthrough")
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"Benchmark only-name",                // no iteration count
		"BenchmarkX 2 99 ns/op extra",        // dangling value without unit
		"BenchmarkX 2 banana ns/op",          // non-numeric value
		"NotABenchmark 2 99 ns/op",           // wrong prefix
		"ok  	sweb	3.210s",                   // trailer
		"--- BENCH: BenchmarkTable1-8",       // sub-benchmark header
		"    bench_test.go:30: some log out", // b.Log output
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as a benchmark", line)
		}
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkTable1-8":    "BenchmarkTable1",
		"BenchmarkTable1":      "BenchmarkTable1",
		"BenchmarkGossip-loss": "BenchmarkGossip-loss", // non-numeric tail kept
		"BenchmarkX-16":        "BenchmarkX",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
