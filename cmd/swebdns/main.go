// Command swebdns is the round-robin front end: the stand-in for the DNS
// rotation that gives SWEB its initial request spread. Browsers that cannot
// be pointed at a rotating name can be pointed at swebdns, which answers
// every request with a 302 to the next server in the rotation — the same
// even, load-oblivious assignment BIND's round-robin provides.
//
// Usage:
//
//	swebdns -addr 127.0.0.1:8000 -servers 127.0.0.1:8080,127.0.0.1:8081
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync/atomic"

	"sweb/internal/httpmsg"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8000", "listen address")
	servers := flag.String("servers", "", "comma list of host:port SWEB nodes")
	flag.Parse()

	var hosts []string
	for _, h := range strings.Split(*servers, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hosts = append(hosts, h)
		}
	}
	if len(hosts) == 0 {
		fmt.Fprintln(os.Stderr, "swebdns: -servers is required")
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swebdns:", err)
		os.Exit(1)
	}
	fmt.Printf("swebdns: rotating %d servers on http://%s\n", len(hosts), ln.Addr())

	var next atomic.Int64
	for {
		conn, err := ln.Accept()
		if err != nil {
			continue
		}
		go func() {
			defer conn.Close()
			req, err := httpmsg.ReadRequest(bufio.NewReader(conn))
			if err != nil {
				_ = httpmsg.WriteSimpleResponse(conn, httpmsg.StatusBadRequest, nil,
					httpmsg.ErrorBody(httpmsg.StatusBadRequest, err.Error()))
				return
			}
			n := next.Add(1)
			host := hosts[int(n)%len(hosts)]
			target := req.Path
			if req.Query != "" {
				target += "?" + req.Query
			}
			loc := "http://" + host + target
			h := httpmsg.Header{}
			h.Set("Location", loc)
			_ = httpmsg.WriteSimpleResponse(conn, httpmsg.StatusMovedTemporarily, h,
				httpmsg.ErrorBody(httpmsg.StatusMovedTemporarily,
					`See <A HREF="`+loc+`">here</A>.`))
		}()
	}
}
