// Command swebd runs one live SWEB node: an HTTP/1.1 keep-alive server
// with the multi-faceted scheduler, gossiping load over UDP to its peers.
//
// Usage:
//
//	swebd -id 0 -addr 127.0.0.1:8080 -udp 127.0.0.1:9080 \
//	      -peers "0=127.0.0.1:8080/127.0.0.1:9080,1=127.0.0.1:8081/127.0.0.1:9081" \
//	      -docroot /srv/sweb/node0 -manifest cluster.manifest -policy sweb
//
// The manifest (see internal/storage.ReadManifest) maps every document to
// its owning node; each node serves its own docroot and fetches foreign
// documents from their owners.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the side-port mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sweb/internal/accesslog"
	"sweb/internal/core"
	"sweb/internal/heat"
	"sweb/internal/httpd"
	"sweb/internal/live"
	"sweb/internal/oracle"
	"sweb/internal/rebalance"
	"sweb/internal/slo"
	"sweb/internal/storage"
	"sweb/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "swebd:", err)
		os.Exit(1)
	}
}

func run() error {
	id := flag.Int("id", 0, "this node's id")
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	udp := flag.String("udp", "127.0.0.1:9080", "loadd UDP listen address")
	peersFlag := flag.String("peers", "", "comma list of id=http/udp peer addresses (include self)")
	docroot := flag.String("docroot", "", "directory with this node's documents")
	manifestPath := flag.String("manifest", "", "cluster document manifest file")
	policy := flag.String("policy", "sweb", "scheduling policy: sweb, rr, fl, cpu")
	maxConc := flag.Int("max-concurrent", 256, "accept capacity before shedding connections")
	oraclePath := flag.String("oracle", "", "oracle configuration file (request characterization table)")
	logPath := flag.String("access-log", "", "append NCSA Common Log Format lines to this file")
	fetchAttempts := flag.Int("fetch-attempts", 3, "internal-fetch attempt budget against a document's owner (1 disables retry)")
	fetchBackoff := flag.Duration("fetch-backoff", 100*time.Millisecond, "base backoff between internal-fetch attempts (doubles, jittered)")
	fetchTimeout := flag.Duration("fetch-timeout", 5*time.Second, "per-attempt dial timeout for internal fetches")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "Retry-After hint stamped on degraded 503 responses")
	failLimit := flag.Int("fail-limit", 3, "consecutive data-path failures before a peer is scheduled around")
	loaddTimeout := flag.Duration("loadd-timeout", 8*time.Second, "peer broadcast silence before it is considered unavailable")
	cacheBytes := flag.Int64("cache-bytes", httpd.DefaultCacheBytes, "hot-file cache capacity in bytes")
	cacheOff := flag.Bool("cache-off", false, "disable the hot-file cache (every request pays the disk or the owner fetch)")
	keepAlive := flag.Bool("keepalive", true, "serve multiple requests per connection (HTTP/1.1 persistent connections)")
	keepAliveMax := flag.Int("keepalive-max", 0, "requests served per connection before it is closed (0: default 100, negative: unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 0, "how long a keep-alive connection may sit idle between requests (0: default 15s)")
	metricsOn := flag.Bool("metrics", true, "serve /sweb/status and /sweb/metrics on the HTTP listener")
	flightOff := flag.Bool("flight-off", false, "disable the per-request flight recorder (black box)")
	flightRing := flag.Int("flight-ring", 0, "flight recorder ring capacity in records (0: default 512)")
	flightNotable := flag.Int("flight-notable", 0, "notable (slow/errored) flight ring capacity (0: default 128)")
	slowThreshold := flag.Duration("slow-threshold", 0, "requests slower than this are retained as notable (0: default 1s, negative: off)")
	heatK := flag.Int("heat-k", 0, "document-heat sketch width: hottest paths tracked per node (0: default 64)")
	heatOff := flag.Bool("heat-off", false, "disable per-document heat telemetry (/sweb/heat and the sweb_heat_* families)")
	snapshotDir := flag.String("snapshot-dir", "", "write /sweb/snapshot diagnostic bundles under this directory (empty disables)")
	sloFlag := flag.String("slo", "", `service-level objectives reported on /sweb/slo, e.g. "avail=99.9,p99=250ms" (empty: defaults)`)
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this side address (empty disables)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event (Perfetto) JSON of this node's spans here on shutdown (enables tracing)")
	traceLimit := flag.Int("trace-limit", 0, "trace event capture cap (0: default 1M; only with -trace-out)")
	replicas := flag.Int("replicas", 1, "replicate every static document R ways (deterministic placement; every node must pass the same value and hold the documents it replicates)")
	rebalPeriod := flag.Duration("rebalance", 0, "heat-driven replica rebalancing period; the lowest-id node in -peers runs the controller (0 disables)")
	grace := flag.Duration("grace", 10*time.Second, "in-flight drain budget on SIGINT/SIGTERM before hard close")
	metricsOut := flag.String("metrics-out", "", "write the final /sweb/metrics snapshot to this file on shutdown")
	flag.Parse()

	if *docroot == "" || *manifestPath == "" {
		return fmt.Errorf("-docroot and -manifest are required")
	}
	mf, err := os.Open(*manifestPath)
	if err != nil {
		return err
	}
	store, err := storage.ReadManifest(mf)
	mf.Close()
	if err != nil {
		return err
	}
	if *replicas > 1 {
		// Every node applies the same deterministic placement, so the
		// cluster agrees on the replica sets without coordination. The
		// bytes are the operator's job: a node that replicates a document
		// must hold it in its docroot (rsync from the owner, or run
		// -rebalance and let the controller materialize copies on demand).
		storage.Replicate(store, *replicas)
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}

	params := core.DefaultParams()
	var pol core.Policy
	switch *policy {
	case "sweb":
		pol = core.NewSWEB(params)
	case "rr":
		pol = core.RoundRobin{}
	case "fl":
		pol = core.FileLocality{P: params}
	case "cpu":
		pol = core.CPUOnly{P: params}
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	cfg := httpd.Config{
		ID:             *id,
		Addr:           *addr,
		UDPAddr:        *udp,
		DocRoot:        *docroot,
		Store:          store,
		Policy:         pol,
		Params:         params,
		HaveParams:     true,
		MaxConcurrent:  *maxConc,
		FetchAttempts:  *fetchAttempts,
		FetchBackoff:   *fetchBackoff,
		FetchTimeout:   *fetchTimeout,
		RetryAfterHint: *retryAfter,
		FailureLimit:   *failLimit,
		LoaddTimeout:   *loaddTimeout,
		CacheBytes:     *cacheBytes,
		CacheOff:       *cacheOff,
		KeepAliveOff:   !*keepAlive,
		KeepAliveMax:   *keepAliveMax,
		IdleTimeout:    *idleTimeout,
		FlightOff:      *flightOff,
		FlightRing:     *flightRing,
		FlightNotable:  *flightNotable,
		SlowThreshold:  *slowThreshold,
		HeatK:          *heatK,
		HeatOff:        *heatOff,
		SnapshotDir:    *snapshotDir,

		DisableIntrospection: !*metricsOn,
	}
	if *sloFlag != "" {
		cfg.SLO, err = slo.ParseObjectives(*sloFlag)
		if err != nil {
			return err
		}
	}
	if *oraclePath != "" {
		of, err := os.Open(*oraclePath)
		if err != nil {
			return err
		}
		cfg.Oracle, err = oracle.ParseConfig(of)
		of.Close()
		if err != nil {
			return err
		}
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder(*traceLimit)
		cfg.Trace = rec
	}
	var logFile *os.File
	if *logPath != "" {
		logFile, err = os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer logFile.Close()
		cfg.AccessLog = accesslog.NewLogger(logFile)
	}
	srv, err := httpd.New(cfg)
	if err != nil {
		return err
	}
	srv.SetPeers(peers)
	srv.Start()
	if *replicas > 1 {
		warnMissingReplicas(store, *id, *docroot)
	}
	rebalStop := make(chan struct{})
	if *rebalPeriod > 0 && isLeader(*id, peers) {
		fmt.Printf("swebd: node %d is the rebalance leader (period %s)\n", *id, *rebalPeriod)
		go runRebalancer(store, peers, *rebalPeriod, rebalStop)
	}
	if *pprofAddr != "" {
		// The SWEB listener is a from-scratch HTTP/1.0 server; pprof needs
		// the stdlib mux, so it gets its own side port. Opt-in only: the
		// profiler should never share the scheduling path's fate.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "swebd: pprof:", err)
			}
		}()
		fmt.Printf("swebd: pprof on http://%s/debug/pprof\n", *pprofAddr)
	}
	fmt.Printf("swebd: node %d serving on http://%s (loadd %s), %d documents, policy %s\n",
		*id, srv.Addr(), srv.UDPAddr(), store.Len(), *policy)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("swebd: shutting down, draining in-flight requests (grace %s; signal again to force)\n", *grace)
	close(rebalStop)
	// A second signal during the drain skips the grace period: Close tears
	// the node down immediately, cutting in-flight connections.
	done := make(chan bool, 1)
	go func() { done <- srv.Shutdown(*grace) }()
	var drained bool
	select {
	case drained = <-done:
	case <-sig:
		srv.Close()
		drained = <-done
	}
	if !drained {
		fmt.Fprintln(os.Stderr, "swebd: grace period expired with requests still in flight")
	}
	// Flush everything the abrupt path used to drop: the access log, the
	// final metrics snapshot, then (below) the trace.
	if cfg.AccessLog != nil {
		_ = cfg.AccessLog.Flush()
	}
	if *metricsOut != "" {
		if err := writeMetricsSnapshot(*metricsOut, srv); err != nil {
			return err
		}
		fmt.Printf("swebd: wrote final metrics snapshot to %s\n", *metricsOut)
	}
	st := srv.Stats()
	fmt.Printf("swebd: served=%d redirected=%d refused=%d internal=%d bytes=%d\n",
		st.Served, st.Redirected, st.Refused, st.InternalFetch, st.BytesOut)
	if rec != nil {
		if err := writeChromeTrace(*traceOut, srv, rec); err != nil {
			return err
		}
		fmt.Printf("swebd: wrote %d trace events to %s (dropped %d); load it at ui.perfetto.dev\n",
			rec.Len(), *traceOut, rec.Dropped())
	}
	return nil
}

// writeMetricsSnapshot renders the node's registry one last time — the
// counters a scraper would have lost between its final poll and the exit.
func writeMetricsSnapshot(path string, srv *httpd.Server) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := srv.Registry().WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeChromeTrace exports this node's recorded spans. A single node sees
// only its own half of redirected requests; merge several nodes'
// /sweb/trace dumps with trace.Collector for the stitched picture.
func writeChromeTrace(path string, srv *httpd.Server, rec *trace.Recorder) error {
	col := trace.NewCollector()
	col.Add(float64(srv.Epoch().UnixNano())/1e9, rec.Events())
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.ExportChrome(f, col.Spans())
}

// warnMissingReplicas flags replicated documents this node is expected to
// serve but does not hold on disk — a routing map that promises bytes the
// docroot lacks turns into 404s under load, so say so at startup.
func warnMissingReplicas(store *storage.Store, id int, docroot string) {
	missing := 0
	for _, p := range store.ReplicatedOn(id) {
		f, _ := store.Lookup(p)
		if f.CGI || f.Owner == id {
			continue
		}
		full := docroot + "/" + strings.TrimPrefix(p, "/")
		if _, err := os.Stat(full); err != nil {
			missing++
		}
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr,
			"swebd: warning: %d replicated document(s) missing from %s; copy them from their owners or run -rebalance\n",
			missing, docroot)
	}
}

// isLeader reports whether id is the lowest node id in the peer list —
// the node that runs the rebalance controller when -rebalance is set on
// every member uniformly.
func isLeader(id int, peers []httpd.Peer) bool {
	for _, p := range peers {
		if p.ID < id {
			return false
		}
	}
	return true
}

// runRebalancer is the leader's control loop: each period it scrapes
// every peer's /sweb/heat, merges the sketches into the cluster view,
// asks the controller for actions, and broadcasts each action to every
// reachable node via /sweb/replicate — the addressed node moves the
// bytes, the rest update their routing maps. For adds the addressed node
// goes first (materialize-then-announce); for drops it goes last, so
// peers stop routing at the copy before it disappears.
func runRebalancer(store *storage.Store, peers []httpd.Peer, period time.Duration, stop chan struct{}) {
	ctrl := rebalance.New(rebalance.Defaults())
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		var dumps []heat.Dump
		up := make(map[int]bool)
		for _, p := range peers {
			d, err := live.Heat(p.HTTPAddr)
			if err != nil {
				continue
			}
			up[p.ID] = true
			dumps = append(dumps, *d)
		}
		acts := ctrl.Tick(heat.Merge(dumps), store, func(n int) bool { return up[n] })
		for _, act := range acts {
			ordered := make([]httpd.Peer, 0, len(peers))
			var addressed []httpd.Peer
			for _, p := range peers {
				if !up[p.ID] {
					continue
				}
				if p.ID == act.Node {
					addressed = append(addressed, p)
					continue
				}
				ordered = append(ordered, p)
			}
			if act.Kind == "add" {
				ordered = append(addressed, ordered...)
			} else {
				ordered = append(ordered, addressed...)
			}
			for _, p := range ordered {
				if _, err := live.ReplicateCmd(p.HTTPAddr, act.Path, act.Node, act.Kind); err != nil {
					fmt.Fprintf(os.Stderr, "swebd: rebalance %s %s@%d via node %d: %v\n",
						act.Kind, act.Path, act.Node, p.ID, err)
					if p.ID == act.Node && act.Kind == "add" {
						break // the copy never landed; don't announce it
					}
				}
			}
		}
	}
}

// parsePeers parses "0=host:port/host:port,1=...".
func parsePeers(s string) ([]httpd.Peer, error) {
	if s == "" {
		return nil, nil
	}
	var peers []httpd.Peer
	for _, part := range strings.Split(s, ",") {
		eq := strings.IndexByte(part, '=')
		slash := strings.IndexByte(part, '/')
		if eq <= 0 || slash <= eq {
			return nil, fmt.Errorf("bad peer %q (want id=http/udp)", part)
		}
		id, err := strconv.Atoi(part[:eq])
		if err != nil {
			return nil, fmt.Errorf("bad peer id in %q", part)
		}
		peers = append(peers, httpd.Peer{
			ID:       id,
			HTTPAddr: part[eq+1 : slash],
			UDPAddr:  part[slash+1:],
		})
	}
	return peers, nil
}
