package main

import "testing"

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("0=127.0.0.1:8080/127.0.0.1:9080,1=h:81/h:91")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("peers = %d", len(peers))
	}
	if peers[0].ID != 0 || peers[0].HTTPAddr != "127.0.0.1:8080" || peers[0].UDPAddr != "127.0.0.1:9080" {
		t.Fatalf("peer 0 = %+v", peers[0])
	}
	if peers[1].ID != 1 || peers[1].HTTPAddr != "h:81" || peers[1].UDPAddr != "h:91" {
		t.Fatalf("peer 1 = %+v", peers[1])
	}
}

func TestParsePeersEmpty(t *testing.T) {
	peers, err := parsePeers("")
	if err != nil || peers != nil {
		t.Fatalf("empty: %v %v", peers, err)
	}
}

func TestParsePeersErrors(t *testing.T) {
	for _, in := range []string{"bogus", "x=1/2", "0=nohttpslash", "0/h=u"} {
		if _, err := parsePeers(in); err == nil {
			t.Errorf("parsed %q", in)
		}
	}
}
