// Command swebtop is a terminal dashboard for a running SWEB cluster.
// It scrapes each node's /sweb/metrics endpoint on an interval, keeps a
// sliding time-series window, and renders per-node load, request and
// redirect rates, per-phase latency quantiles, firing alerts, the SLO
// error-budget panel (see -slo), the document-heat panel with its
// placement advisor (the cluster-wide merge of every node's /sweb/heat
// sketch, see -heat), and the cluster-wide tail of notable
// flight records (slow or errored requests from every node's black
// box). Typing "s" followed by Enter asks every
// node to write a diagnostic snapshot bundle (requires the nodes to run
// with -snapshot-dir).
//
// Usage:
//
//	swebtop host1:8080 host2:8080 ...        # live refreshing dashboard
//	swebtop -once host1:8080 host2:8080      # single snapshot (CI-friendly)
//	swebtop -csv out.csv -rounds 10 host...  # collect, then dump timeline CSV
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sweb/internal/flight"
	"sweb/internal/heat"
	"sweb/internal/live"
	"sweb/internal/monitor"
	"sweb/internal/slo"
)

func main() {
	interval := flag.Duration("interval", time.Second, "scrape/refresh interval")
	window := flag.Float64("window", 15, "rate/quantile window in seconds")
	once := flag.Bool("once", false, "collect a couple of rounds, print one snapshot, exit")
	rounds := flag.Int("rounds", 0, "exit after this many collect rounds (0 = run until interrupted)")
	csvOut := flag.String("csv", "", "write the load-over-time timeline CSV here on exit")
	flightRows := flag.Int("flight", 8, "notable flight records shown under the dashboard (0 hides the panel)")
	heatRows := flag.Int("heat", 6, "hottest documents shown in the heat panel with the placement advisor (0 hides both)")
	sloSpec := flag.String("slo", "", `objectives for the SLO budget panel, e.g. "avail=99.9,p99=250ms" (empty: defaults)`)
	sloOff := flag.Bool("slo-off", false, "hide the SLO error-budget panel")
	sloWindow := flag.Float64("slo-window", 0, "SLO budget accounting window in seconds (0: the whole scrape history)")
	flag.Parse()

	objs := slo.DefaultObjectives()
	if *sloSpec != "" {
		var err error
		if objs, err = slo.ParseObjectives(*sloSpec); err != nil {
			fmt.Fprintln(os.Stderr, "swebtop:", err)
			os.Exit(2)
		}
	}
	if *sloOff {
		objs = nil
	}

	addrs := flag.Args()
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "swebtop: no node addresses given (host:port ...)")
		os.Exit(2)
	}

	// The SLO burn-rate pairs ride the same alert table as the built-in
	// rules, so a budget breach shows up next to node_down.
	mon := monitor.New(monitor.Config{Window: *window, ExtraRules: slo.Rules(objs, slo.DefaultWindows(0))})
	for i, addr := range addrs {
		mon.AddSource(&monitor.HTTPSource{
			Name:    strconv.Itoa(i),
			Addr:    addr,
			Timeout: *interval,
		})
	}

	maxRounds := *rounds
	if *once && maxRounds == 0 {
		// Two rounds give every counter a baseline so rates are non-zero.
		maxRounds = 2
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// The keyboard listener: a line consisting of "s" triggers a snapshot
	// bundle on every node. Line-buffered stdin keeps the terminal sane
	// without raw-mode contortions.
	keys := make(chan string, 4)
	if !*once {
		go func() {
			sc := bufio.NewScanner(os.Stdin)
			for sc.Scan() {
				keys <- strings.TrimSpace(sc.Text())
			}
		}()
	}

	epoch := time.Now()
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	mon.Collect(time.Since(epoch).Seconds())
	if !*once {
		render(mon, addrs, *flightRows, *heatRows, objs, *sloWindow, time.Since(epoch).Seconds())
	}

loop:
	for maxRounds == 0 || mon.Rounds() < int64(maxRounds) {
		select {
		case <-sig:
			break loop
		case k := <-keys:
			if k == "s" {
				triggerSnapshots(addrs)
			}
		case <-tick.C:
			mon.Collect(time.Since(epoch).Seconds())
			if !*once {
				render(mon, addrs, *flightRows, *heatRows, objs, *sloWindow, time.Since(epoch).Seconds())
			}
		}
	}

	if *once {
		fmt.Print(monitor.RenderSnapshot(mon.Snapshot()))
		fmt.Print(renderSLO(mon, len(addrs), objs, *sloWindow, time.Since(epoch).Seconds()))
		if *heatRows > 0 {
			fmt.Print(renderHeat(addrs, *heatRows))
		}
		if *flightRows > 0 {
			fmt.Print(renderFlight(addrs, *flightRows))
		}
	}
	if *csvOut != "" {
		if err := writeCSV(mon, *csvOut); err != nil {
			fmt.Fprintln(os.Stderr, "swebtop:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "swebtop: wrote timeline CSV to %s\n", *csvOut)
	}
}

// render clears the terminal and draws the current snapshot, the SLO
// error-budget panel, the document-heat panel with its placement
// advisor, and the cluster-wide notable-request tail.
func render(mon *monitor.Monitor, addrs []string, flightRows, heatRows int, objs []slo.Objective, sloWindow, now float64) {
	fmt.Print("\x1b[2J\x1b[H")
	fmt.Print(monitor.RenderSnapshot(mon.Snapshot()))
	fmt.Print(renderSLO(mon, len(addrs), objs, sloWindow, now))
	if heatRows > 0 {
		fmt.Print(renderHeat(addrs, heatRows))
	}
	if flightRows > 0 {
		fmt.Print(renderFlight(addrs, flightRows))
	}
	fmt.Println(`keys: "s" + Enter writes a snapshot bundle on every node`)
}

// renderSLO evaluates the configured objectives over the monitor's scrape
// history and renders the error-budget panel. An empty objective list
// (-slo-off) renders nothing.
func renderSLO(mon *monitor.Monitor, n int, objs []slo.Objective, window, now float64) string {
	if len(objs) == 0 {
		return ""
	}
	names := make([]string, n)
	for i := range names {
		names[i] = strconv.Itoa(i)
	}
	if window <= 0 || window > now {
		window = now
	}
	return slo.Render(slo.Evaluate(mon.Store(), names, objs, window, now))
}

// renderFlight scrapes every node's /sweb/flight and renders the newest
// notable records merged cluster-wide. Dead nodes are skipped, the same
// stance the metrics scraper takes.
func renderFlight(addrs []string, limit int) string {
	var dumps []flight.Dump
	for _, addr := range addrs {
		d, err := live.Flight(addr)
		if err != nil || !d.Enabled {
			continue
		}
		dumps = append(dumps, *d)
	}
	recs := flight.Merge(dumps, true)
	if len(recs) > limit {
		recs = recs[len(recs)-limit:]
	}
	return flight.RenderRecords("notable requests (slow/errored), cluster-wide", recs)
}

// renderHeat scrapes every node's /sweb/heat, merges the sketches into
// the cluster-wide ranking, and renders the heat panel plus the
// placement advisor's report. Dead nodes are skipped.
func renderHeat(addrs []string, limit int) string {
	var dumps []heat.Dump
	for _, addr := range addrs {
		d, err := live.Heat(addr)
		if err != nil || !d.Enabled {
			continue
		}
		dumps = append(dumps, *d)
	}
	m := heat.Merge(dumps)
	out := heat.Render("hottest documents, cluster-wide", m, limit)
	if advs := heat.Advise(m); len(advs) > 0 {
		out += heat.RenderAdvice("placement advisor (report-only)", advs, limit)
	}
	return out
}

// triggerSnapshots asks every node to capture a diagnostic bundle. Each
// node writes under its own -snapshot-dir; nodes without one answer 503
// and are reported, not fatal.
func triggerSnapshots(addrs []string) {
	for _, addr := range addrs {
		dir, err := live.TriggerSnapshot(addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swebtop: snapshot %s: %v\n", addr, err)
			continue
		}
		fmt.Fprintf(os.Stderr, "swebtop: %s wrote bundle %s\n", addr, dir)
	}
}

func writeCSV(mon *monitor.Monitor, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mon.WriteTimelineCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
