// Command swebtop is a terminal dashboard for a running SWEB cluster.
// It scrapes each node's /sweb/metrics endpoint on an interval, keeps a
// sliding time-series window, and renders per-node load, request and
// redirect rates, per-phase latency quantiles, and firing alerts.
//
// Usage:
//
//	swebtop host1:8080 host2:8080 ...        # live refreshing dashboard
//	swebtop -once host1:8080 host2:8080      # single snapshot (CI-friendly)
//	swebtop -csv out.csv -rounds 10 host...  # collect, then dump timeline CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"sweb/internal/monitor"
)

func main() {
	interval := flag.Duration("interval", time.Second, "scrape/refresh interval")
	window := flag.Float64("window", 15, "rate/quantile window in seconds")
	once := flag.Bool("once", false, "collect a couple of rounds, print one snapshot, exit")
	rounds := flag.Int("rounds", 0, "exit after this many collect rounds (0 = run until interrupted)")
	csvOut := flag.String("csv", "", "write the load-over-time timeline CSV here on exit")
	flag.Parse()

	addrs := flag.Args()
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "swebtop: no node addresses given (host:port ...)")
		os.Exit(2)
	}

	mon := monitor.New(monitor.Config{Window: *window})
	for i, addr := range addrs {
		mon.AddSource(&monitor.HTTPSource{
			Name:    strconv.Itoa(i),
			Addr:    addr,
			Timeout: *interval,
		})
	}

	maxRounds := *rounds
	if *once && maxRounds == 0 {
		// Two rounds give every counter a baseline so rates are non-zero.
		maxRounds = 2
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	epoch := time.Now()
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	mon.Collect(time.Since(epoch).Seconds())
	if !*once {
		render(mon)
	}

loop:
	for maxRounds == 0 || mon.Rounds() < int64(maxRounds) {
		select {
		case <-sig:
			break loop
		case <-tick.C:
			mon.Collect(time.Since(epoch).Seconds())
			if !*once {
				render(mon)
			}
		}
	}

	if *once {
		fmt.Print(monitor.RenderSnapshot(mon.Snapshot()))
	}
	if *csvOut != "" {
		if err := writeCSV(mon, *csvOut); err != nil {
			fmt.Fprintln(os.Stderr, "swebtop:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "swebtop: wrote timeline CSV to %s\n", *csvOut)
	}
}

// render clears the terminal and draws the current snapshot.
func render(mon *monitor.Monitor) {
	fmt.Print("\x1b[2J\x1b[H")
	fmt.Print(monitor.RenderSnapshot(mon.Snapshot()))
}

func writeCSV(mon *monitor.Monitor, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mon.WriteTimelineCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
