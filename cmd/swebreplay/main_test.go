package main

import (
	"testing"
	"time"

	"sweb/internal/accesslog"
)

func entry(path string, size int64, status int, at time.Time) accesslog.Entry {
	return accesslog.Entry{
		Host: "client.example", Time: at, Method: "GET", Path: path,
		Proto: "HTTP/1.0", Status: status, Bytes: size,
	}
}

func TestBuildReplay(t *testing.T) {
	t0 := time.Date(1996, 5, 1, 9, 0, 0, 0, time.UTC)
	entries := []accesslog.Entry{
		entry("/a.html", 1000, 200, t0),
		entry("/b.html?q=1", 2000, 200, t0.Add(time.Second)),
		entry("/a.html", 1000, 200, t0.Add(2*time.Second)), // repeat: no new doc
		entry("/missing", -1, 404, t0.Add(3*time.Second)),  // skipped
	}
	store, arrivals, err := BuildReplay(entries, 2)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("documents = %d", store.Len())
	}
	f, ok := store.Lookup("/b.html")
	if !ok || f.Size != 2000 {
		t.Fatalf("b.html = %+v ok=%v", f, ok)
	}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
}

func TestBuildReplayEmpty(t *testing.T) {
	if _, _, err := BuildReplay(nil, 2); err == nil {
		t.Fatal("empty log accepted")
	}
}

func TestStripQuery(t *testing.T) {
	if stripQuery("/a?b=1") != "/a" || stripQuery("/a") != "/a" {
		t.Fatal("stripQuery")
	}
}
