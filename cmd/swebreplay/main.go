// Command swebreplay drives the simulator with a real access log: parse an
// NCSA Common Log Format file (as written by swebd or any 1996-lineage
// httpd), rebuild the document corpus from the logged sizes, and replay the
// trace at its original timing under a chosen scheduling policy.
//
// Usage:
//
//	swebreplay -log access.log -nodes 6 -policy sweb
//	swebreplay -log access.log -nodes 6 -policy rr -machine now
//
// The corpus is reconstructed from the log itself: every logged 200 GET
// defines a document of the logged size, placed round-robin by first
// appearance. Comparing policies on the same trace shows what SWEB would
// have bought that deployment.
package main

import (
	"flag"
	"fmt"
	"os"

	"sweb/internal/accesslog"
	"sweb/internal/simsrv"
	"sweb/internal/stats"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "swebreplay:", err)
		os.Exit(1)
	}
}

func run() error {
	logPath := flag.String("log", "", "access log file (NCSA Common Log Format)")
	nodes := flag.Int("nodes", 6, "cluster size to replay against")
	policy := flag.String("policy", "sweb", "scheduling policy: sweb, rr, fl, cpu")
	machine := flag.String("machine", "meiko", "substrate: meiko or now")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if *logPath == "" {
		return fmt.Errorf("-log is required")
	}
	f, err := os.Open(*logPath)
	if err != nil {
		return err
	}
	entries, err := accesslog.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	store, arrivals, err := BuildReplay(entries, *nodes)
	if err != nil {
		return err
	}

	var cfg simsrv.Config
	switch *machine {
	case "meiko":
		cfg = simsrv.MeikoConfig(*nodes, store)
	case "now":
		cfg = simsrv.NOWConfig(*nodes, store)
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}
	cfg.Policy = *policy
	cfg.Seed = *seed
	cl, err := simsrv.New(cfg)
	if err != nil {
		return err
	}
	res := cl.RunSchedule(arrivals)

	tbl := &stats.Table{
		Title:  fmt.Sprintf("Replay of %s: %d requests on %d %s nodes, policy %s", *logPath, len(arrivals), *nodes, *machine, cl.PolicyName()),
		Header: []string{"metric", "value"},
	}
	tbl.AddRowStrings("completed", fmt.Sprintf("%d / %d", res.Completed, res.Offered))
	tbl.AddRowStrings("drop rate", stats.FormatPercent(res.DropRate()))
	tbl.AddRowStrings("mean response", stats.FormatSeconds(res.MeanResponse()))
	tbl.AddRowStrings("p95 response", stats.FormatSeconds(res.Response.Quantile(0.95)))
	tbl.AddRowStrings("redirects", fmt.Sprintf("%d", res.Redirects))
	tbl.AddRowStrings("cache hit rate", stats.FormatPercent(res.CacheHitRate))
	fmt.Println(tbl)
	return nil
}

// BuildReplay reconstructs a document layout and arrival schedule from a
// parsed access log: each distinct successfully-GET path becomes a document
// of its logged size, placed round-robin by first appearance.
func BuildReplay(entries []accesslog.Entry, nodes int) (*storage.Store, []workload.Arrival, error) {
	store := storage.NewStore(nodes)
	next := 0
	for _, e := range entries {
		if e.Method != "GET" || e.Status != 200 || e.Bytes < 0 {
			continue
		}
		path := stripQuery(e.Path)
		if _, ok := store.Lookup(path); ok {
			continue
		}
		if err := store.Add(storage.File{Path: path, Size: e.Bytes, Owner: next % nodes}); err != nil {
			return nil, nil, err
		}
		next++
	}
	if store.Len() == 0 {
		return nil, nil, fmt.Errorf("no replayable documents in the log")
	}
	arrivals, err := workload.FromAccessLog(entries)
	if err != nil {
		return nil, nil, err
	}
	return store, arrivals, nil
}

func stripQuery(p string) string {
	for i := 0; i < len(p); i++ {
		if p[i] == '?' {
			return p[:i]
		}
	}
	return p
}
