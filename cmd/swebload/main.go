// Command swebload is the burst load generator used against live SWEB
// nodes: at each second it launches a constant number of requests
// (the paper's test methodology) round-robin across the given servers,
// follows SWEB redirections, and reports response-time (p50/p95/p99),
// time-to-first-byte, and failure statistics.
//
// Usage:
//
//	swebload -servers 127.0.0.1:8080,127.0.0.1:8081 \
//	         -paths /docs/u000000.dat,/docs/u000001.dat -rps 16 -seconds 30
//
// With -slo "avail=99.9,p99=250ms" the run doubles as a release gate: the
// client-observed outcomes are scored against the objectives, the budget
// report is printed, and a breach exits nonzero (CI-friendly).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"sweb/internal/httpmsg"
	"sweb/internal/slo"
	"sweb/internal/stats"
)

func main() {
	servers := flag.String("servers", "", "comma list of host:port servers (the DNS rotation)")
	pathsFlag := flag.String("paths", "/", "comma list of request paths, drawn uniformly")
	rps := flag.Int("rps", 8, "requests launched per second")
	seconds := flag.Int("seconds", 30, "test duration")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request client timeout")
	seed := flag.Int64("seed", 1, "random seed")
	keepAlive := flag.Bool("keepalive", true, "reuse connections across requests (HTTP/1.1 persistent connections)")
	sloSpec := flag.String("slo", "", `gate the run on client-observed objectives, e.g. "avail=99.9,p99=250ms"; breach exits nonzero`)
	flag.Parse()

	var objs []slo.Objective
	if *sloSpec != "" {
		var err error
		if objs, err = slo.ParseObjectives(*sloSpec); err != nil {
			fmt.Fprintln(os.Stderr, "swebload:", err)
			os.Exit(2)
		}
	}

	hosts := splitNonEmpty(*servers)
	paths := splitNonEmpty(*pathsFlag)
	if len(hosts) == 0 {
		fmt.Fprintln(os.Stderr, "swebload: -servers is required")
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))

	type outcome struct {
		ok         bool
		redirected bool
		elapsed    time.Duration
		ttfb       time.Duration // first response byte of the final hop, -1 none
	}
	total := *rps * *seconds
	outcomes := make([]outcome, total)

	pool := newConnPool(*keepAlive)
	defer pool.closeAll()

	var wg sync.WaitGroup
	start := time.Now()
	idx := 0
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for sec := 0; sec < *seconds; sec++ {
		for k := 0; k < *rps; k++ {
			i := idx
			idx++
			host := hosts[i%len(hosts)] // the DNS round-robin
			path := paths[rng.Intn(len(paths))]
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				ok, redirected, ttfb := fetch(pool, host, path, *timeout)
				outcomes[i] = outcome{ok: ok, redirected: redirected, elapsed: time.Since(t0), ttfb: ttfb}
			}()
		}
		if sec < *seconds-1 {
			<-ticker.C
		}
	}
	wg.Wait()

	var done, failed, redirected int
	var latency, ttfb stats.Summary
	for _, o := range outcomes {
		if !o.ok {
			failed++
			continue
		}
		done++
		if o.redirected {
			redirected++
		}
		latency.Add(o.elapsed.Seconds())
		if o.ttfb >= 0 {
			ttfb.Add(o.ttfb.Seconds())
		}
	}
	fmt.Printf("offered %d  completed %d  failed %d (%.1f%%)  redirected %d  wall %.1fs\n",
		total, done, failed, 100*float64(failed)/float64(total), redirected, time.Since(start).Seconds())
	for _, line := range []struct {
		name string
		s    *stats.Summary
	}{{"response", &latency}, {"ttfb", &ttfb}} {
		if line.s.N() == 0 {
			continue
		}
		fmt.Printf("%s: mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
			line.name,
			stats.FormatSeconds(line.s.Mean()),
			stats.FormatSeconds(line.s.Quantile(0.50)),
			stats.FormatSeconds(line.s.Quantile(0.95)),
			stats.FormatSeconds(line.s.Quantile(0.99)),
			stats.FormatSeconds(line.s.Max()))
	}

	if len(objs) > 0 {
		// The client-side gate: the same budget arithmetic the server's
		// /sweb/slo runs, but over what the client actually observed —
		// failures are errors, and a latency objective compares each
		// completed request's exact response time against the threshold
		// (no histogram-bucket rounding out here).
		rep := slo.Report{
			AtSeconds:     time.Since(start).Seconds(),
			WindowSeconds: float64(*seconds),
			Scope:         "client",
		}
		for _, o := range objs {
			var c slo.Counts
			for _, out := range outcomes {
				c.Total++
				if out.ok && (!o.IsLatency() || out.elapsed.Seconds() <= o.Threshold) {
					c.Good++
				}
			}
			rep.Objectives = append(rep.Objectives, slo.NewStatus(o, c, rep.WindowSeconds))
		}
		fmt.Print(slo.Render(rep))
		if rep.Breached() {
			fmt.Fprintln(os.Stderr, "swebload: SLO breached")
			os.Exit(1)
		}
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// pconn is one parked keep-alive connection with its response parser.
type pconn struct {
	c  net.Conn
	br *bufio.Reader
}

// connPool parks idle keep-alive connections per server address so that a
// generator goroutine's next request — including the follow-up after a
// redirect — skips the TCP handshake. With keepAlive off it parks nothing
// and every fetch dials fresh.
type connPool struct {
	mu        sync.Mutex
	idle      map[string][]*pconn
	keepAlive bool
}

func newConnPool(keepAlive bool) *connPool {
	return &connPool{idle: make(map[string][]*pconn), keepAlive: keepAlive}
}

func (p *connPool) get(addr string) *pconn {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.idle[addr]
	if len(list) == 0 {
		return nil
	}
	pc := list[len(list)-1]
	p.idle[addr] = list[:len(list)-1]
	return pc
}

func (p *connPool) put(addr string, pc *pconn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.keepAlive || len(p.idle[addr]) >= 64 {
		pc.c.Close()
		return
	}
	p.idle[addr] = append(p.idle[addr], pc)
}

func (p *connPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr, list := range p.idle {
		for _, pc := range list {
			pc.c.Close()
		}
		delete(p.idle, addr)
	}
}

// exchangeOnce runs one request/response on addr, pooled connection first
// with a fresh-dial retry when the parked one went stale. The returned
// time is when the response's first byte arrived.
func exchangeOnce(pool *connPool, addr string, req *httpmsg.Request, timeout time.Duration) (*httpmsg.Response, time.Time, error) {
	if pc := pool.get(addr); pc != nil {
		if resp, firstByte, err := tryExchange(pc, req, timeout); err == nil {
			finishExchange(pool, addr, pc, resp)
			return resp, firstByte, nil
		}
		pc.c.Close()
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, time.Time{}, err
	}
	pc := &pconn{c: conn, br: bufio.NewReader(conn)}
	resp, firstByte, err := tryExchange(pc, req, timeout)
	if err != nil {
		pc.c.Close()
		return nil, time.Time{}, err
	}
	finishExchange(pool, addr, pc, resp)
	return resp, firstByte, nil
}

func tryExchange(pc *pconn, req *httpmsg.Request, timeout time.Duration) (*httpmsg.Response, time.Time, error) {
	_ = pc.c.SetDeadline(time.Now().Add(timeout))
	if err := req.Write(pc.c); err != nil {
		return nil, time.Time{}, err
	}
	// Peek blocks until the first response byte is readable — the honest
	// client-side TTFB instant — without consuming it from the parser.
	if _, err := pc.br.Peek(1); err != nil {
		return nil, time.Time{}, err
	}
	firstByte := time.Now()
	resp, err := httpmsg.ReadResponse(pc.br, 128<<20)
	return resp, firstByte, err
}

// finishExchange parks the connection when the response framing left it
// positioned at the next response; otherwise the connection is spent.
func finishExchange(pool *connPool, addr string, pc *pconn, resp *httpmsg.Response) {
	if resp.KeepAlive() && resp.SelfDelimited() {
		pool.put(addr, pc)
	} else {
		pc.c.Close()
	}
}

// fetch performs one GET, following up to 4 redirects. ttfb is the final
// hop's first response byte measured from the fetch's start — redirect
// round-trips included, since that is the wait the user actually saw.
func fetch(pool *connPool, addr, pathAndQuery string, timeout time.Duration) (ok, redirected bool, ttfb time.Duration) {
	start := time.Now()
	for hop := 0; hop < 4; hop++ {
		p, q := pathAndQuery, ""
		if i := strings.IndexByte(pathAndQuery, '?'); i >= 0 {
			p, q = pathAndQuery[:i], pathAndQuery[i+1:]
		}
		if dp, err := httpmsg.DecodePath(p); err == nil {
			p = dp // redirect Locations arrive percent-escaped
		}
		req := &httpmsg.Request{Method: "GET", Path: p, Query: q, Header: httpmsg.Header{}}
		if pool.keepAlive {
			req.Proto = "HTTP/1.1"
			req.Header.Set("Connection", "keep-alive")
		}
		resp, firstByte, err := exchangeOnce(pool, addr, req, timeout)
		if err != nil {
			return false, redirected, -1
		}
		if resp.StatusCode == httpmsg.StatusMovedTemporarily {
			loc := resp.Header.Get("Location")
			rest, found := strings.CutPrefix(loc, "http://")
			if !found {
				return false, redirected, -1
			}
			redirected = true
			if slash := strings.IndexByte(rest, '/'); slash >= 0 {
				addr, pathAndQuery = rest[:slash], rest[slash:]
			} else {
				addr, pathAndQuery = rest, "/"
			}
			continue
		}
		return resp.StatusCode == httpmsg.StatusOK, redirected, firstByte.Sub(start)
	}
	return false, redirected, -1
}
