// Command swebload is the burst load generator used against live SWEB
// nodes: at each second it launches a constant number of requests
// (the paper's test methodology) round-robin across the given servers,
// follows SWEB redirections, and reports response-time and failure
// statistics.
//
// Usage:
//
//	swebload -servers 127.0.0.1:8080,127.0.0.1:8081 \
//	         -paths /docs/u000000.dat,/docs/u000001.dat -rps 16 -seconds 30
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"sweb/internal/httpmsg"
)

func main() {
	servers := flag.String("servers", "", "comma list of host:port servers (the DNS rotation)")
	pathsFlag := flag.String("paths", "/", "comma list of request paths, drawn uniformly")
	rps := flag.Int("rps", 8, "requests launched per second")
	seconds := flag.Int("seconds", 30, "test duration")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request client timeout")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	hosts := splitNonEmpty(*servers)
	paths := splitNonEmpty(*pathsFlag)
	if len(hosts) == 0 {
		fmt.Fprintln(os.Stderr, "swebload: -servers is required")
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))

	type outcome struct {
		ok         bool
		redirected bool
		elapsed    time.Duration
	}
	total := *rps * *seconds
	outcomes := make([]outcome, total)

	var wg sync.WaitGroup
	start := time.Now()
	idx := 0
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for sec := 0; sec < *seconds; sec++ {
		for k := 0; k < *rps; k++ {
			i := idx
			idx++
			host := hosts[i%len(hosts)] // the DNS round-robin
			path := paths[rng.Intn(len(paths))]
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				ok, redirected := fetch(host, path, *timeout)
				outcomes[i] = outcome{ok: ok, redirected: redirected, elapsed: time.Since(t0)}
			}()
		}
		if sec < *seconds-1 {
			<-ticker.C
		}
	}
	wg.Wait()

	var done, failed, redirected int
	var latencies []time.Duration
	for _, o := range outcomes {
		if !o.ok {
			failed++
			continue
		}
		done++
		if o.redirected {
			redirected++
		}
		latencies = append(latencies, o.elapsed)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	fmt.Printf("offered %d  completed %d  failed %d (%.1f%%)  redirected %d  wall %.1fs\n",
		total, done, failed, 100*float64(failed)/float64(total), redirected, time.Since(start).Seconds())
	if done > 0 {
		fmt.Printf("response: mean %v  p50 %v  p95 %v  max %v\n",
			sum/time.Duration(done), latencies[done/2], latencies[done*95/100], latencies[done-1])
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// fetch performs one GET, following up to 4 redirects.
func fetch(addr, pathAndQuery string, timeout time.Duration) (ok, redirected bool) {
	for hop := 0; hop < 4; hop++ {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return false, redirected
		}
		_ = conn.SetDeadline(time.Now().Add(timeout))
		p, q := pathAndQuery, ""
		if i := strings.IndexByte(pathAndQuery, '?'); i >= 0 {
			p, q = pathAndQuery[:i], pathAndQuery[i+1:]
		}
		req := &httpmsg.Request{Method: "GET", Path: p, Query: q, Header: httpmsg.Header{}}
		if err := req.Write(conn); err != nil {
			conn.Close()
			return false, redirected
		}
		resp, err := httpmsg.ReadResponse(bufio.NewReader(conn), 128<<20)
		conn.Close()
		if err != nil {
			return false, redirected
		}
		if resp.StatusCode == httpmsg.StatusMovedTemporarily {
			loc := resp.Header.Get("Location")
			rest, found := strings.CutPrefix(loc, "http://")
			if !found {
				return false, redirected
			}
			redirected = true
			if slash := strings.IndexByte(rest, '/'); slash >= 0 {
				addr, pathAndQuery = rest[:slash], rest[slash:]
			} else {
				addr, pathAndQuery = rest, "/"
			}
			continue
		}
		return resp.StatusCode == httpmsg.StatusOK, redirected
	}
	return false, redirected
}
