// Command swebsim regenerates the SWEB paper's evaluation tables on the
// simulated Meiko CS-2 / NOW substrate.
//
// Usage:
//
//	swebsim -table all            # every experiment (slow: full searches)
//	swebsim -table 2              # a single table: 1,2,3,4,5, skew,
//	                              # overhead, analytic, a1..a4, hetero
//	swebsim -table 2 -quick       # shortened durations and search limits
//	swebsim -seed 7               # change the randomness seed
//	swebsim -monitor-csv out.csv  # monitored demo burst → timeline CSV
//
//	swebsim -slo "avail=99.9,p99=250ms" -table ""
//	                              # monitored demo burst → SLO budget panel
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"sweb/internal/des"
	"sweb/internal/experiments"
	"sweb/internal/heat"
	"sweb/internal/monitor"
	"sweb/internal/simsrv"
	"sweb/internal/slo"
	"sweb/internal/stats"
	"sweb/internal/storage"
	"sweb/internal/trace"
	"sweb/internal/workload"
)

func main() {
	table := flag.String("table", "all", "which experiment to run: all,1,2,3,4,5,skew,overhead,analytic,a1,a2,a3,a4,hetero,forward,central,spof,loss,curve,tput,coop,east")
	quick := flag.Bool("quick", false, "shorter durations and search limits")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "text", "output format: text, md, csv")
	traceOut := flag.String("trace-out", "", "also run a small traced Meiko burst and write its Chrome trace-event (Perfetto) JSON here")
	monitorCSV := flag.String("monitor-csv", "", "run a monitored Meiko burst and write its load-over-time timeline CSV here")
	cacheBytes := flag.Int64("cache-bytes", 0, "override every node's page-cache capacity in bytes for the demo runs (0: the spec default; matches swebd -cache-bytes)")
	cacheOff := flag.Bool("cache-off", false, "zero every node's page cache for the demo runs (matches swebd -cache-off)")
	sloFlag := flag.String("slo", "", `run a monitored demo burst and print its SLO budget report, e.g. "avail=99.9,p99=250ms" (matches swebd -slo)`)
	heatFlag := flag.Bool("heat", false, "run a skewed demo burst and print the document-heat panel and placement advisor report")
	sloScale := flag.Float64("slo-scale", 0.001, "compress the SRE burn-rate alert windows by this factor for the virtual clock (with -slo)")
	replicasFlag := flag.Int("replicas", 1, "replicate every demo-run document R ways across the simulated nodes (matches swebd -replicas)")
	flag.Parse()
	demoReplicas = *replicasFlag

	if *traceOut != "" {
		if err := exportDemoTrace(*traceOut, *seed, *cacheBytes, *cacheOff); err != nil {
			fmt.Fprintln(os.Stderr, "swebsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote simulated trace to %s; load it at ui.perfetto.dev\n", *traceOut)
		if *table == "" && *monitorCSV == "" {
			return
		}
	}

	if *monitorCSV != "" {
		if err := exportMonitorCSV(*monitorCSV, *seed, *cacheBytes, *cacheOff); err != nil {
			fmt.Fprintln(os.Stderr, "swebsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote simulated monitor timeline to %s\n", *monitorCSV)
		if *table == "" {
			return
		}
	}

	if *sloFlag != "" {
		if err := runSLOReport(*sloFlag, *sloScale, *seed, *cacheBytes, *cacheOff); err != nil {
			fmt.Fprintln(os.Stderr, "swebsim:", err)
			os.Exit(1)
		}
		if *table == "" {
			return
		}
	}

	if *heatFlag {
		if err := runHeatReport(*seed, *cacheBytes, *cacheOff); err != nil {
			fmt.Fprintln(os.Stderr, "swebsim:", err)
			os.Exit(1)
		}
		if *table == "" {
			return
		}
	}

	o := experiments.Options{Quick: *quick, Seed: *seed}
	runners := map[string]func(experiments.Options) *stats.Table{
		"1":        func(o experiments.Options) *stats.Table { _, t := experiments.Table1(o); return t },
		"2":        func(o experiments.Options) *stats.Table { _, t := experiments.Table2(o); return t },
		"3":        func(o experiments.Options) *stats.Table { _, t := experiments.Table3(o); return t },
		"4":        func(o experiments.Options) *stats.Table { _, t := experiments.Table4(o); return t },
		"5":        func(o experiments.Options) *stats.Table { _, t := experiments.Table5(o); return t },
		"skew":     func(o experiments.Options) *stats.Table { _, t := experiments.Skewed(o); return t },
		"overhead": func(o experiments.Options) *stats.Table { _, t := experiments.Overhead(o); return t },
		"analytic": func(o experiments.Options) *stats.Table { _, t := experiments.Analytic(o); return t },
		"a1":       func(o experiments.Options) *stats.Table { _, t := experiments.AblationDelta(o); return t },
		"a2":       func(o experiments.Options) *stats.Table { _, t := experiments.AblationDNSCache(o); return t },
		"a3":       func(o experiments.Options) *stats.Table { _, t := experiments.AblationFacets(o); return t },
		"a4":       func(o experiments.Options) *stats.Table { _, t := experiments.AblationPingPong(o); return t },
		"hetero":   func(o experiments.Options) *stats.Table { _, t := experiments.Heterogeneous(o); return t },
		"forward":  func(o experiments.Options) *stats.Table { _, t := experiments.Forwarding(o); return t },
		"central":  func(o experiments.Options) *stats.Table { _, t := experiments.Centralized(o); return t },
		"spof":     func(o experiments.Options) *stats.Table { _, t := experiments.CentralSPOF(o); return t },
		"loss":     func(o experiments.Options) *stats.Table { _, t := experiments.GossipLoss(o); return t },
		"curve":    func(o experiments.Options) *stats.Table { _, t := experiments.ScalabilityCurve(o); return t },
		"tput":     func(o experiments.Options) *stats.Table { _, t := experiments.Throughput(o); return t },
		"coop":     func(o experiments.Options) *stats.Table { _, t := experiments.CoopCache(o); return t },
		"east":     func(o experiments.Options) *stats.Table { _, t := experiments.EastCoast(o); return t },
	}
	order := []string{"1", "2", "3", "4", "5", "skew", "overhead", "analytic",
		"a1", "a2", "a3", "a4", "hetero", "forward", "central", "spof", "loss",
		"curve", "tput", "coop", "east"}

	which := strings.Split(*table, ",")
	if *table == "all" {
		which = order
	}
	if *table == "" {
		which = nil
	}
	render := func(t *stats.Table) string { return t.String() }
	switch *format {
	case "text":
	case "md":
		render = func(t *stats.Table) string { return t.Markdown() }
	case "csv":
		render = func(t *stats.Table) string { return t.CSV() }
	default:
		fmt.Fprintf(os.Stderr, "swebsim: unknown format %q\n", *format)
		os.Exit(2)
	}
	for _, w := range which {
		run, ok := runners[w]
		if !ok {
			fmt.Fprintf(os.Stderr, "swebsim: unknown table %q (want one of %s)\n", w, strings.Join(order, ","))
			os.Exit(2)
		}
		fmt.Println(render(run(o)))
	}
}

// demoReplicas is the -replicas setting for the demo runs; applyReplicas
// folds it into each demo's document set.
var demoReplicas = 1

// applyReplicas replicates the demo documents R ways when -replicas asks
// for it, mirroring swebd's deterministic startup placement.
func applyReplicas(st *storage.Store) {
	if demoReplicas > 1 {
		storage.Replicate(st, demoReplicas)
	}
}

// exportDemoTrace runs a short traced Meiko burst — small enough to open
// comfortably in the Perfetto UI, busy enough to show 302 hops as flow
// arrows between node tracks — and writes the Chrome trace-event JSON.
func exportDemoTrace(path string, seed, cacheBytes int64, cacheOff bool) error {
	const nodes = 4
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, 16, 64<<10)
	applyReplicas(st)
	rec := trace.NewRecorder(0)
	cfg := simsrv.MeikoConfig(nodes, st)
	cfg.Seed = seed
	cfg.Trace = rec
	cfg.CacheBytes = cacheBytes
	cfg.CacheOff = cacheOff
	cl, err := simsrv.New(cfg)
	if err != nil {
		return err
	}
	burst := workload.Burst{RPS: 8, DurationSeconds: 5, Jitter: true}
	rng := rand.New(rand.NewSource(seed))
	arrivals, err := burst.Generate(workload.UniformPicker(paths), nil, rng)
	if err != nil {
		return err
	}
	cl.RunSchedule(arrivals)
	col := trace.NewCollector()
	col.Add(0, rec.Events()) // sim time is already one shared clock
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.ExportChrome(f, col.Spans())
}

// runSLOReport drives the demo-sized Meiko burst with the burn-rate alert
// rules attached to the monitor — windows compressed by scale for the
// virtual clock — then prints the error-budget panel and any alerts the
// run left firing: the simulated twin of `swebtop`'s SLO panel.
func runSLOReport(objSpec string, scale float64, seed, cacheBytes int64, cacheOff bool) error {
	objs, err := slo.ParseObjectives(objSpec)
	if err != nil {
		return err
	}
	const nodes = 4
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, 16, 64<<10)
	applyReplicas(st)
	cfg := simsrv.MeikoConfig(nodes, st)
	cfg.Seed = seed
	cfg.CacheBytes = cacheBytes
	cfg.CacheOff = cacheOff
	cl, err := simsrv.New(cfg)
	if err != nil {
		return err
	}
	mon := monitor.New(monitor.Config{
		Window:     5,
		ExtraRules: slo.Rules(objs, slo.DefaultWindows(scale)),
	})
	names := make([]string, cl.Nodes())
	for i := 0; i < cl.Nodes(); i++ {
		i := i
		names[i] = fmt.Sprintf("%d", i)
		mon.AddSource(&monitor.RegistrySource{
			Name:     names[i],
			Registry: cl.Registry(i),
			Up:       func() bool { return cl.NodeUp(i) },
		})
	}
	cl.Every(des.Second, func() { mon.Collect(cl.Sim.Now().ToSeconds()) })
	burst := workload.Burst{RPS: 8, DurationSeconds: 5, Jitter: true}
	rng := rand.New(rand.NewSource(seed))
	arrivals, err := burst.Generate(workload.UniformPicker(paths), nil, rng)
	if err != nil {
		return err
	}
	cl.RunSchedule(arrivals)
	now := cl.Sim.Now().ToSeconds()
	fmt.Print(slo.Render(slo.Evaluate(mon.Store(), names, objs, now, now)))
	if alerts := mon.Alerts(); len(alerts) > 0 {
		fmt.Printf("firing alerts: %s\n", strings.Join(monitor.SortedAlertKeys(alerts), " "))
	}
	return nil
}

// runHeatReport drives a skewed demo burst — the paper's Section 4.2
// hotspot pathology, most requests hammering one file owned by node 0 —
// then prints the cluster-wide document-heat panel and the placement
// advisor's report: the simulated twin of `swebtop -heat`.
func runHeatReport(seed, cacheBytes int64, cacheOff bool) error {
	const nodes = 4
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, 16, 64<<10)
	hot := storage.SkewedSet(st, 256<<10)
	applyReplicas(st)
	cfg := simsrv.MeikoConfig(nodes, st)
	cfg.Seed = seed
	cfg.CacheBytes = cacheBytes
	cfg.CacheOff = cacheOff
	cl, err := simsrv.New(cfg)
	if err != nil {
		return err
	}
	pick, err := workload.WeightedPicker([][]string{{hot}, paths}, []float64{0.7, 0.3})
	if err != nil {
		return err
	}
	burst := workload.Burst{RPS: 8, DurationSeconds: 10, Jitter: true}
	rng := rand.New(rand.NewSource(seed))
	arrivals, err := burst.Generate(pick, nil, rng)
	if err != nil {
		return err
	}
	cl.RunSchedule(arrivals)
	m := cl.MergedHeat()
	fmt.Print(heat.Render("hottest documents, cluster-wide (simulated)", m, 8))
	fmt.Print(heat.RenderAdvice("placement advisor (report-only)", heat.Advise(m), 8))
	return nil
}

// exportMonitorCSV runs the same demo-sized Meiko burst with a cluster
// monitor collecting once per simulated second, then writes the
// load-over-time timeline CSV — the simulated twin of `swebtop -csv`.
func exportMonitorCSV(path string, seed, cacheBytes int64, cacheOff bool) error {
	const nodes = 4
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, 16, 64<<10)
	applyReplicas(st)
	cfg := simsrv.MeikoConfig(nodes, st)
	cfg.Seed = seed
	cfg.CacheBytes = cacheBytes
	cfg.CacheOff = cacheOff
	cl, err := simsrv.New(cfg)
	if err != nil {
		return err
	}
	mon := monitor.New(monitor.Config{Window: 5})
	for i := 0; i < cl.Nodes(); i++ {
		i := i
		mon.AddSource(&monitor.RegistrySource{
			Name:     fmt.Sprintf("%d", i),
			Registry: cl.Registry(i),
			Up:       func() bool { return cl.NodeUp(i) },
		})
	}
	cl.Every(des.Second, func() { mon.Collect(cl.Sim.Now().ToSeconds()) })
	burst := workload.Burst{RPS: 8, DurationSeconds: 5, Jitter: true}
	rng := rand.New(rand.NewSource(seed))
	arrivals, err := burst.Generate(workload.UniformPicker(paths), nil, rng)
	if err != nil {
		return err
	}
	cl.RunSchedule(arrivals)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return mon.WriteTimelineCSV(f)
}
