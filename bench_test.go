package sweb_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"sweb"
	"sweb/internal/cache"
	"sweb/internal/des"
	"sweb/internal/httpd"
	"sweb/internal/live"
	"sweb/internal/metrics"
	"sweb/internal/rebalance"
	"sweb/internal/simsrv"
	"sweb/internal/storage"
	"sweb/internal/trace"
	"sweb/internal/workload"
)

// One benchmark per table/figure in the paper's evaluation. Each iteration
// regenerates the experiment on the simulated substrate (quick mode: the
// full 30s/45s bursts, shortened sustained searches) and reports the
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The full-length variants are available
// through cmd/swebsim.

func benchOpts(i int) sweb.ExperimentOptions {
	return sweb.ExperimentOptions{Quick: true, Seed: int64(i) + 1}
}

// BenchmarkTable1 regenerates Table 1: maximum rps, burst vs sustained,
// Meiko and NOW, single server vs SWEB.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.Table1(benchOpts(i))
		for _, r := range rows {
			if r.Machine == "Meiko" && r.Server == "SWEB" && r.FileSize == 1536<<10 && r.Duration >= 60 {
				b.ReportMetric(float64(r.MaxRPS), "meiko-sustained-1.5M-rps")
			}
			if r.Machine == "NOW" && r.Server == "SWEB" && r.FileSize == 1536<<10 && r.Duration == 30 {
				b.ReportMetric(float64(r.MaxRPS), "now-burst-1.5M-rps")
			}
		}
	}
}

// BenchmarkTable2 regenerates Table 2: response time and drop rate vs node
// count at a fixed offered load.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.Table2(benchOpts(i))
		for _, r := range rows {
			if r.Machine == "Meiko" && r.FileSize == 1536<<10 {
				switch r.Nodes {
				case 1:
					b.ReportMetric(r.DropRate*100, "single-node-drop-pct")
				case 6:
					b.ReportMetric(r.MeanResponse, "six-node-response-s")
				}
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3: non-uniform sizes, RR vs FL vs SWEB.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.Table3(benchOpts(i))
		var rr, sw float64
		for _, r := range rows {
			if r.RPS == 24 {
				switch r.Policy {
				case "Round Robin":
					rr = r.MeanResponse
				case "SWEB":
					sw = r.MeanResponse
				}
			}
		}
		if sw > 0 {
			b.ReportMetric(rr/sw, "sweb-speedup-over-rr")
		}
	}
}

// BenchmarkTable4 regenerates Table 4: uniform 1.5MB on the NOW Ethernet.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.Table4(benchOpts(i))
		var rr, fl float64
		for _, r := range rows {
			if r.RPS == 4 {
				switch r.Policy {
				case "Round Robin":
					rr = r.MeanResponse
				case "File Locality":
					fl = r.MeanResponse
				}
			}
		}
		if fl > 0 {
			b.ReportMetric(rr/fl, "locality-speedup-over-rr")
		}
	}
}

// BenchmarkTable5 regenerates Table 5: the client-side cost distribution of
// a 1.5MB fetch on the loaded Meiko.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := sweb.Table5(benchOpts(i))
		b.ReportMetric(res.Total, "total-client-s")
		b.ReportMetric(res.Preprocess*1000, "preprocess-ms")
		b.ReportMetric((res.Analysis+res.Redirect)*1000, "sweb-overhead-ms")
	}
}

// BenchmarkSkewed regenerates the Section 4.2 hot-file pathology test.
func BenchmarkSkewed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.SkewedTest(benchOpts(i))
		for _, r := range rows {
			switch r.Policy {
			case "Round Robin":
				b.ReportMetric(r.MeanResponse, "rr-s")
			case "File Locality":
				b.ReportMetric(r.MeanResponse, "fl-s")
			case "SWEB":
				b.ReportMetric(r.MeanResponse, "sweb-s")
			}
		}
	}
}

// BenchmarkOverhead regenerates the Section 4.3 server-side CPU accounting.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := sweb.Overhead(benchOpts(i))
		b.ReportMetric(res.Shares["schedule"]*100, "schedule-cpu-pct")
		b.ReportMetric(res.Shares["loadd"]*100, "loadd-cpu-pct")
		b.ReportMetric(res.Shares["parse"]*100, "parse-cpu-pct")
	}
}

// BenchmarkAnalytic evaluates the Section 3.3 closed form (and, in full
// mode, its simulated counterpart).
func BenchmarkAnalytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.AnalyticTable(benchOpts(i))
		b.ReportMetric(rows[0].Predicted, "meiko-analytic-rps")
	}
}

// BenchmarkAblationDelta measures the Δ=30% anti-herd bump on vs off.
func BenchmarkAblationDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.AblationDelta(benchOpts(i))
		b.ReportMetric(rows[0].MeanResponse, "delta-on-s")
		b.ReportMetric(rows[1].MeanResponse, "delta-off-s")
	}
}

// BenchmarkAblationDNSCache measures the round-robin DNS caching weakness.
func BenchmarkAblationDNSCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.AblationDNSCache(benchOpts(i))
		for _, r := range rows {
			switch {
			case r.Variant == "no caching, RR":
				b.ReportMetric(r.MeanResponse, "rr-s")
			case r.Variant == "cached (3 domains, 60s TTL), RR":
				b.ReportMetric(r.MeanResponse, "rr-cached-s")
			default:
				b.ReportMetric(r.MeanResponse, "sweb-cached-s")
			}
		}
	}
}

// BenchmarkAblationFacets measures multi-faceted vs single-faceted
// scheduling.
func BenchmarkAblationFacets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.AblationFacets(benchOpts(i))
		for _, r := range rows {
			switch r.Variant {
			case "multi-faceted (SWEB)":
				b.ReportMetric(r.MeanResponse, "multi-s")
			case "single-faceted (CPU-only)":
				b.ReportMetric(r.MeanResponse, "cpu-only-s")
			}
		}
	}
}

// BenchmarkAblationPingPong measures the redirect-limit choice.
func BenchmarkAblationPingPong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.AblationPingPong(benchOpts(i))
		for _, r := range rows {
			switch r.Variant {
			case "max redirects=1":
				b.ReportMetric(r.MeanResponse, "limit1-s")
			case "max redirects=0":
				b.ReportMetric(r.MeanResponse, "limit0-s")
			}
		}
	}
}

// BenchmarkHeterogeneous measures the Section 5 future-work scenario:
// unequal node speeds with churn.
func BenchmarkHeterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.Heterogeneous(benchOpts(i))
		for _, r := range rows {
			if r.Variant == "SWEB" {
				b.ReportMetric(r.MeanResponse, "sweb-s")
			} else {
				b.ReportMetric(r.MeanResponse, "rr-s")
			}
		}
	}
}

// BenchmarkSchedulerDecision measures the raw cost of one broker decision —
// the paper's "1-4 ms" analysis budget is ~5 orders of magnitude above it.
func BenchmarkSchedulerDecision(b *testing.B) {
	sched := sweb.NewScheduler(sweb.DefaultParams())
	loads := make([]sweb.NodeLoad, 6)
	for i := range loads {
		loads[i] = sweb.NodeLoad{
			Available: true, CPULoad: float64(i), DiskLoad: float64(i % 3),
			NetLoad: float64(i % 2), CPUOpsPerSec: 40e6,
			DiskBytesPerSec: 5e6, NetBytesPerSec: 4.5e6,
		}
	}
	req := sweb.Request{Path: "/d.dat", Size: 1536 << 10, Owner: 2, Ops: 8e5, DiskBytes: 1536 << 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Arrived = i % 6
		_ = sched.Choose(req, req.Arrived, loads)
	}
}

// BenchmarkForwarding compares URL redirection with server-side forwarding
// (the Section 3.1 alternative the paper rejected).
func BenchmarkForwarding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.Forwarding(benchOpts(i))
		for _, r := range rows {
			if r.Variant == "reassign=redirect" {
				b.ReportMetric(r.MeanResponse, "redirect-s")
			} else {
				b.ReportMetric(r.MeanResponse, "forward-s")
			}
		}
	}
}

// BenchmarkCentralized compares the distributed scheduler with the central
// dispatcher Section 3.1 argues against.
func BenchmarkCentralized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.Centralized(benchOpts(i))
		for _, r := range rows {
			if r.RPS == 32 {
				if r.Arch == "distributed" {
					b.ReportMetric(r.MeanResponse, "distributed-s")
				} else {
					b.ReportMetric(r.MeanResponse, "centralized-s")
				}
			}
		}
	}
}

// BenchmarkCentralSPOF measures the single-point-of-failure cost.
func BenchmarkCentralSPOF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.CentralSPOF(benchOpts(i))
		for _, r := range rows {
			if r.Arch == "centralized, dispatcher dies" {
				b.ReportMetric(r.DropRate*100, "centralized-drop-pct")
			} else {
				b.ReportMetric(r.DropRate*100, "distributed-drop-pct")
			}
		}
	}
}

// BenchmarkGossipLoss measures loadd's tolerance to dropped datagrams.
func BenchmarkGossipLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.GossipLoss(benchOpts(i))
		b.ReportMetric(rows[0].MeanResponse, "loss0-s")
		b.ReportMetric(rows[2].MeanResponse, "loss70-s")
	}
}

// BenchmarkScalabilityCurve regenerates the response-vs-load curve.
func BenchmarkScalabilityCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, _ := sweb.ScalabilityCurve(benchOpts(i))
		for _, p := range points {
			if p.RPS == 24 {
				switch p.Nodes {
				case 1:
					b.ReportMetric(p.MeanResponse, "n1-24rps-s")
				case 4:
					b.ReportMetric(p.MeanResponse, "n4-24rps-s")
				}
			}
		}
	}
}

// BenchmarkCoopCache measures the cooperative cache-hint extension.
func BenchmarkCoopCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.CoopCache(benchOpts(i))
		b.ReportMetric(rows[0].MeanResponse, "hints-off-s")
		b.ReportMetric(rows[1].MeanResponse, "hints-on-s")
	}
}

// BenchmarkServeHotSet measures the live data path's hot-file cache: a
// two-node cluster under round-robin (which never redirects, so node 0
// relays every node-1-owned document through the internal fetch), serving
// one hot set repeatedly via node 0, cache on vs -cache-off. A millisecond
// of injected dial latency stands in for the paper's interconnect — on
// loopback the NFS-stand-in fetch is unrealistically free. Cached serving
// skips the relay entirely, so throughput must at least double; the
// steady-state hit rate on a fitting hot set is the headline.
func BenchmarkServeHotSet(b *testing.B) {
	const (
		docBytes = 64 << 10
		rounds   = 40
	)
	run := func(cacheOff bool) (rps, hitRate, missPct float64) {
		st := storage.NewStore(2)
		paths := storage.UniformSet(st, 8, docBytes)
		cl, err := live.Start(live.Options{
			Nodes: 2, Store: st, BaseDir: b.TempDir(), Policy: "rr",
			CacheOff: cacheOff,
			Faults:   &live.Faults{DialLatency: time.Millisecond},
			Seed:     5,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		var hot []string
		for _, p := range paths {
			if o, _ := st.Owner(p); o == 1 {
				hot = append(hot, p)
			}
		}
		client := cl.NewClient()
		warm := func() {
			for _, p := range hot {
				res, err := client.GetVia(0, p)
				if err != nil || res.Status != 200 {
					b.Fatalf("%s: res=%+v err=%v", p, res, err)
				}
			}
		}
		warm() // fill the cache (and the OS page cache, for fairness)
		var before cache.Stats
		if !cacheOff {
			before = cl.Servers[0].Cache().Stats()
		}
		start := time.Now()
		for r := 0; r < rounds; r++ {
			warm()
		}
		elapsed := time.Since(start).Seconds()
		rps = float64(rounds*len(hot)) / elapsed
		if !cacheOff {
			after := cl.Servers[0].Cache().Stats()
			hits := float64(after.Hits - before.Hits)
			misses := float64(after.Misses - before.Misses)
			if hits+misses > 0 {
				hitRate = hits / (hits + misses)
				missPct = 100 * misses / (hits + misses)
			}
		}
		return rps, hitRate, missPct
	}
	for i := 0; i < b.N; i++ {
		cachedRPS, hitRate, missPct := run(false)
		uncachedRPS, _, _ := run(true)
		b.ReportMetric(cachedRPS, "cached-rps")
		b.ReportMetric(uncachedRPS, "uncached-rps")
		b.ReportMetric(cachedRPS/uncachedRPS, "cache-speedup")
		b.ReportMetric(hitRate, "hot-hit-rate")
		b.ReportMetric(missPct, "hot-miss-pct")
	}
}

// BenchmarkServeKeepAlive measures the persistent-connection data plane.
// Part one is the headline: one node serving a small hot document to a
// single client, HTTP/1.1 keep-alive (every fetch rides one TCP
// connection) against the old one-shot discipline (dial, fetch, close per
// request). The whole saving is the connection setup/teardown the paper's
// phase model charges to every request, so keepalive-rps must be a
// multiple of serial-rps. Part two prices the same saving on the redirect
// hop: under file locality a misdirected request bounces to the owner via
// a 302, and the owner's redirect_hop histogram measures 302-sent to
// follow-up-arrived. A keep-alive client already holds a connection to
// the owner, so the warm hop drops the handshake that the cold (fresh
// client per fetch) hop pays.
func BenchmarkServeKeepAlive(b *testing.B) {
	const (
		docBytes = 4 << 10
		fetches  = 600
		hops     = 200
	)
	// startServe boots a one-node cluster (flightOff prices the always-on
	// black box: the same loop with the recorder disabled) and returns a
	// timed fetch pass plus the client for discipline changes. With traced
	// set the node runs a span recorder, so every success carries a trace
	// id; exemplarOff then isolates the one piece that differs — the
	// per-success exemplar stamp on the response and TTFB histograms —
	// while the (pre-existing) tracing cost stays on both sides.
	startServe := func(flightOff, traced, exemplarOff, heatOff bool) (run func() float64, client *live.Client, cleanup func()) {
		st := storage.NewStore(1)
		paths := storage.UniformSet(st, 4, docBytes)
		opts := live.Options{Nodes: 1, Store: st, BaseDir: b.TempDir(),
			Policy: "rr", FlightOff: flightOff, ExemplarOff: exemplarOff,
			HeatOff: heatOff, Seed: 9}
		if traced {
			opts.Trace = trace.NewRecorder(1 << 22)
		}
		cl, err := live.Start(opts)
		if err != nil {
			b.Fatal(err)
		}
		client = cl.NewClient()
		run = func() float64 {
			start := time.Now()
			for i := 0; i < fetches; i++ {
				res, err := client.Get(paths[i%len(paths)])
				if err != nil || res.Status != 200 {
					b.Fatalf("fetch %d: res=%+v err=%v", i, res, err)
				}
			}
			return float64(fetches) / time.Since(start).Seconds()
		}
		return run, client, func() { client.Close(); cl.Close() }
	}

	// runServe measures keep-alive vs serial throughput plus the price of
	// the recorder, of the SLO exemplar stamp, and of the document-heat
	// sketch update. One pass is only ~25 ms of wall clock, so a
	// scheduler hiccup landing on one variant masquerades as double-digit
	// overhead; the variants therefore interleave in the same time
	// neighbourhood and each keeps its fastest pass. The acceptance bars
	// are <5% rps overhead with the recorder on, <5% for exemplar
	// stamping on traced traffic, and <5% for the heat sketch.
	runServe := func() (kaRPS, offRPS, exRPS, noExRPS, heatOffRPS, serialRPS float64) {
		runOn, client, cleanOn := startServe(false, false, false, false)
		defer cleanOn()
		runOff, _, cleanOff := startServe(true, false, false, false)
		defer cleanOff()
		runEx, _, cleanEx := startServe(false, true, false, false)
		defer cleanEx()
		runNoEx, _, cleanNoEx := startServe(false, true, true, false)
		defer cleanNoEx()
		runNoHeat, _, cleanNoHeat := startServe(false, false, false, true)
		defer cleanNoHeat()
		runOn() // warm the caches and the parked connections
		runOff()
		runEx()
		runNoEx()
		runNoHeat()
		for t := 0; t < 5; t++ {
			if r := runOn(); r > kaRPS {
				kaRPS = r
			}
			if r := runOff(); r > offRPS {
				offRPS = r
			}
			if r := runEx(); r > exRPS {
				exRPS = r
			}
			if r := runNoEx(); r > noExRPS {
				noExRPS = r
			}
			if r := runNoHeat(); r > heatOffRPS {
				heatOffRPS = r
			}
		}
		client.SetKeepAlive(false) // the old discipline: dial per request
		for t := 0; t < 3; t++ {
			if r := runOn(); r > serialRPS {
				serialRPS = r
			}
		}
		return kaRPS, offRPS, exRPS, noExRPS, heatOffRPS, serialRPS
	}

	// hopMean scrapes the owner's redirect_hop histogram and returns the
	// mean observed hop in seconds along with the observation count.
	hopMean := func(srv *httpd.Server) (sum, count float64) {
		var buf bytes.Buffer
		if err := srv.Registry().WriteText(&buf); err != nil {
			b.Fatal(err)
		}
		samples, err := metrics.ParseText(&buf)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range samples {
			if s.Labels["phase"] != "redirect_hop" {
				continue
			}
			switch s.Name {
			case "sweb_phase_seconds_sum":
				sum = s.Value
			case "sweb_phase_seconds_count":
				count = s.Value
			}
		}
		return sum, count
	}
	runHops := func() (coldUS, warmUS float64) {
		const doc = "/hop/doc.html"
		st := storage.NewStore(2)
		st.MustAdd(storage.File{Path: doc, Size: docBytes, Owner: 1})
		st.MustAdd(storage.File{Path: "/hop/local.html", Size: docBytes, Owner: 0})
		cl, err := live.Start(live.Options{Nodes: 2, Store: st, BaseDir: b.TempDir(),
			Policy: "fl", Trace: trace.NewRecorder(0), Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		// Wait until node 0 has learned the ownership map and redirects.
		deadline := time.Now().Add(10 * time.Second)
		for {
			probe := cl.NewClient()
			res, err := probe.GetVia(0, doc)
			probe.Close()
			if err == nil && res.Status == 200 && res.Redirected {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("node 0 never redirected: res=%+v err=%v", res, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		owner := cl.Servers[1]
		measure := func(fetch func(i int)) float64 {
			s0, c0 := hopMean(owner)
			for i := 0; i < hops; i++ {
				fetch(i)
			}
			s1, c1 := hopMean(owner)
			if c1 <= c0 {
				b.Fatalf("no redirect_hop observations (count %v -> %v)", c0, c1)
			}
			return 1e6 * (s1 - s0) / (c1 - c0)
		}
		coldUS = measure(func(i int) {
			// A fresh client per fetch: the hop pays the TCP handshake.
			client := cl.NewClient()
			defer client.Close()
			if res, err := client.GetVia(0, doc); err != nil || res.Status != 200 {
				b.Fatalf("cold hop %d: res=%+v err=%v", i, res, err)
			}
		})
		client := cl.NewClient()
		defer client.Close()
		if res, err := client.GetVia(1, doc); err != nil || res.Status != 200 {
			b.Fatalf("warm prime: res=%+v err=%v", res, err)
		}
		warmUS = measure(func(i int) {
			// The parked connection to the owner turns the hop into a
			// write on an open socket.
			if res, err := client.GetVia(0, doc); err != nil || res.Status != 200 {
				b.Fatalf("warm hop %d: res=%+v err=%v", i, res, err)
			}
		})
		return coldUS, warmUS
	}

	// Throwaway run: the first cluster of the process pays one-time costs
	// (page cache, TCP stack, runtime warm-up) that would otherwise inflate
	// the first measured pass under -benchtime=1x.
	runServe()

	for i := 0; i < b.N; i++ {
		kaRPS, offRPS, exRPS, noExRPS, heatOffRPS, serialRPS := runServe()
		coldUS, warmUS := runHops()
		b.ReportMetric(kaRPS, "keepalive-rps")
		b.ReportMetric(serialRPS, "serial-rps")
		b.ReportMetric(kaRPS/serialRPS, "keepalive-speedup")
		b.ReportMetric(kaRPS, "flight-on-rps")
		b.ReportMetric(offRPS, "flight-off-rps")
		b.ReportMetric(kaRPS/offRPS, "recorder-speedup")
		b.ReportMetric(100*(offRPS-kaRPS)/offRPS, "flight-overhead-pts")
		b.ReportMetric(exRPS, "slo-exemplar-rps")
		b.ReportMetric(100*(noExRPS-exRPS)/noExRPS, "slo-overhead-pts")
		b.ReportMetric(kaRPS, "heat-on-rps")
		b.ReportMetric(heatOffRPS, "heat-off-rps")
		b.ReportMetric(100*(heatOffRPS-kaRPS)/heatOffRPS, "heat-overhead-pts")
		b.ReportMetric(coldUS, "cold-hop-us")
		b.ReportMetric(warmUS, "warm-hop-us")
	}
}

// BenchmarkReplicatedHotSet is the redistribution headline: a Zipf-style
// skew aims 80% of a round-robin cluster's traffic at one 1.5MB document,
// so under the static single-owner layout every byte of the hot set
// streams off one disk — two thirds of it over the interconnect. The
// heat-driven rebalancer replicates the hotspot onto its heaviest landing
// node a couple of virtual seconds in, splitting the disk load two ways.
// The comparison is the same seeded burst with the rebalancer off vs on:
// redistribution must beat the static-owner layout on mean response, and
// the relay rate for the hot document must drop.
func BenchmarkReplicatedHotSet(b *testing.B) {
	// 80% of 6 rps aims 7.2 MB/s of 1.5MB fetches at the owner's 5 MB/s
	// disk: past one disk's capacity, comfortably under two's — the regime
	// where a second copy is the difference between divergence and health.
	const (
		nodes = 3
		rps   = 6
		dur   = 30
	)
	run := func(seed int64, rebal bool) (mean, relays, completed float64) {
		st := storage.NewStore(nodes)
		bg := storage.UniformSet(st, 6, 256<<10)
		hot := storage.SkewedSet(st, 1536<<10)
		cfg := simsrv.MeikoConfig(nodes, st)
		// Round-robin serves where requests land and the cache is off, so
		// the only relief can come from where the bytes live.
		cfg.Policy = simsrv.PolicyRoundRobin
		cfg.CacheOff = true
		cfg.Seed = seed
		cl, err := simsrv.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rebal {
			cl.StartRebalancer(rebalance.Config{
				MaxReplicas:   2,
				BudgetPerTick: 1,
				HotShare:      0.5,
				CoolShare:     0.05,
				ForTicks:      2,
				CooldownTicks: 2,
			}, des.Second)
		}
		pick, err := workload.WeightedPicker([][]string{{hot}, bg}, []float64{0.8, 0.2})
		if err != nil {
			b.Fatal(err)
		}
		burst := workload.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
		arr, err := burst.Generate(pick, nil, rand.New(rand.NewSource(seed)))
		if err != nil {
			b.Fatal(err)
		}
		res := cl.RunSchedule(arr)
		if res.Completed == 0 {
			b.Fatal("skewed burst completed nothing")
		}
		for i := 0; i < cl.Nodes(); i++ {
			relays += cl.Registry(i).Counter("sweb_heat_relays_total",
				"requests served by fetching the document from a replica",
				metrics.Labels{"path": hot}).Value()
		}
		return res.MeanResponse(), relays, float64(res.Completed)
	}
	for i := 0; i < b.N; i++ {
		seed := int64(i) + 31
		staticMean, staticRelays, staticDone := run(seed, false)
		rebalMean, rebalRelays, rebalDone := run(seed, true)
		b.ReportMetric(staticMean, "static-owner-s")
		b.ReportMetric(rebalMean, "rebalanced-s")
		b.ReportMetric(staticMean/rebalMean, "redistribution-speedup")
		b.ReportMetric(100*(staticRelays-rebalRelays)/staticRelays, "relay-reduction-pct")
		b.ReportMetric(rebalDone/staticDone, "completion-ratio")
	}
}

// BenchmarkEastCoast measures the Rutgers cross-country client experiment.
func BenchmarkEastCoast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := sweb.EastCoast(benchOpts(i))
		for _, r := range rows {
			switch r.Policy {
			case "Round Robin":
				b.ReportMetric(r.MeanResponse, "rr-s")
			case "File Locality":
				b.ReportMetric(r.MeanResponse, "fl-s")
			}
		}
	}
}
