module sweb

go 1.22
