#!/bin/sh
# SLO smoke test: boot one healthy swebd node with objectives configured,
# drive it with swebload's client-side SLO gate (a breach exits nonzero
# and fails the job), then save the node's /sweb/slo error-budget report
# and the client's gate output as artifacts.
#
# Usage: scripts/slo_smoke.sh [report-dir]
set -eu

out="${1:-slo-report}"
mkdir -p "$out"
work="$(mktemp -d)"
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/swebd" ./cmd/swebd
go build -o "$work/swebload" ./cmd/swebload

# A single-node corpus: eight 4 KiB documents, all owned by node 0.
mkdir -p "$work/docroot/docs"
manifest="$work/cluster.manifest"
echo "nodes 1" >"$manifest"
paths=""
i=0
while [ "$i" -lt 8 ]; do
	head -c 4096 /dev/urandom >"$work/docroot/docs/d$i.dat"
	echo "/docs/d$i.dat 4096 0" >>"$manifest"
	paths="$paths${paths:+,}/docs/d$i.dat"
	i=$((i + 1))
done

slo="avail=99.9,p99=250ms"
"$work/swebd" -id 0 -addr 127.0.0.1:18080 -udp 127.0.0.1:19080 \
	-docroot "$work/docroot" -manifest "$manifest" \
	-peers "0=127.0.0.1:18080/127.0.0.1:19080" \
	-slo "$slo" &
pid=$!

i=0
until curl -sf http://127.0.0.1:18080/sweb/status >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "slo_smoke: swebd never came up" >&2
		exit 1
	fi
	sleep 0.2
done

# The gate: swebload scores its own observations against the objectives
# and exits nonzero on a breach.
"$work/swebload" -servers 127.0.0.1:18080 -paths "$paths" \
	-rps 16 -seconds 5 -slo "$slo" | tee "$out/swebload.txt"

# The server's own budget accounting over the same traffic.
curl -sf http://127.0.0.1:18080/sweb/slo | tee "$out/slo.json"
echo
echo "slo_smoke: reports saved under $out"
