package sweb_test

import (
	"math/rand"
	"testing"

	"sweb"
)

// The facade tests exercise the public API exactly the way the examples and
// a downstream user would.

func TestSchedulerFacade(t *testing.T) {
	sched := sweb.NewScheduler(sweb.DefaultParams())
	loads := []sweb.NodeLoad{
		{Available: true, CPUOpsPerSec: 40e6, DiskBytesPerSec: 5e6, NetBytesPerSec: 4.5e6},
		{Available: true, CPUOpsPerSec: 40e6, DiskBytesPerSec: 5e6, NetBytesPerSec: 4.5e6, CPULoad: 30, DiskLoad: 30, NetLoad: 30},
	}
	req := sweb.Request{Path: "/x", Size: 1 << 20, Owner: 1, Ops: 1e6, DiskBytes: 1 << 20, Arrived: 0}
	dec := sched.Choose(req, 0, loads)
	if dec.Target != 0 {
		t.Fatalf("scheduler sent a request to the melted owner: %+v", dec)
	}
}

func TestSimClusterFacade(t *testing.T) {
	st := sweb.NewStore(2)
	paths := sweb.UniformSet(st, 4, 64<<10)
	cfg := sweb.MeikoSim(2, st)
	cfg.Seed = 1
	cl, err := sweb.NewSimCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst := sweb.Burst{RPS: 4, DurationSeconds: 3, Jitter: true}
	arr, err := burst.Generate(sweb.UniformPicker(paths), nil, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	res := cl.RunSchedule(arr)
	if res.Completed != 12 || res.Dropped() != 0 {
		t.Fatalf("completed=%d dropped=%d", res.Completed, res.Dropped())
	}
}

func TestNOWSimFacade(t *testing.T) {
	st := sweb.NewStore(2)
	paths := sweb.UniformSet(st, 4, 8<<10)
	cfg := sweb.NOWSim(2, st)
	cl, err := sweb.NewSimCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst := sweb.Burst{RPS: 2, DurationSeconds: 2, Jitter: true}
	arr, _ := burst.Generate(sweb.UniformPicker(paths), nil, rand.New(rand.NewSource(3)))
	if res := cl.RunSchedule(arr); res.Completed != 4 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestLiveClusterFacade(t *testing.T) {
	st := sweb.NewStore(2)
	paths := sweb.UniformSet(st, 4, 4096)
	cl, err := sweb.StartLive(sweb.LiveOptions{Nodes: 2, Store: st, BaseDir: t.TempDir(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.NewClient().Get(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || len(res.Body) != 4096 {
		t.Fatalf("status=%d len=%d", res.Status, len(res.Body))
	}
}

func TestAnalyticFacade(t *testing.T) {
	m := sweb.AnalyticModel{P: 6, F: 1.5e6, B1: 5e6, B2: 4.5e6, A: 0.02}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := m.MaxSustainedRPS(); r < 17 || r > 18 {
		t.Fatalf("bound = %v", r)
	}
}

func TestBaselinePoliciesExported(t *testing.T) {
	var _ sweb.Policy = sweb.RoundRobin{}
	var _ sweb.Policy = sweb.FileLocality{P: sweb.DefaultParams()}
	var _ sweb.Policy = sweb.CPUOnly{P: sweb.DefaultParams()}
	var _ sweb.Policy = sweb.NewScheduler(sweb.DefaultParams())
}
